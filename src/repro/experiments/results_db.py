"""Session records and the golden-baseline results DB.

The broker's queue answers *"what ran and what is still running"*; this
module answers *"what did it produce, and is that still what it should
produce"* — the MITuna ``session.py`` / ``golden.py`` pair scaled to
this repo.  One SQLite file (``results.db`` next to the broker's
``queue.db``) holds:

sessions
    One row per sweep submission: which point function, how many
    tasks, which host enqueued it and when.  ``status`` lists them, so
    a broker directory doubles as a lab notebook of everything ever
    submitted through it.

golden
    The blessed baseline: per ``(fn, label)`` the task's content key
    and the SHA-256 of its recorded result, copied from a completed
    sweep by the ``bless`` CLI verb.  Later runs diff against it with
    :meth:`ResultsDB.diff`, which separates the two very different
    kinds of drift:

    * **result drift** — same task content key, different result
      digest.  The same work produced different bytes: a determinism
      regression, corruption, or a behavioral code change.  This is
      the alarm the golden DB exists to ring.
    * **task drift** — the content key itself changed.  The sweep was
      reconfigured (new δ grid, different workload seed, new code in
      the task tuple); results *should* differ, and the baseline wants
      re-blessing once the new shape is vetted.

Everything here is derivable bytes (digests, not result payloads), so
the file is small, mergeable, and safe to commit to a results branch.
"""

from __future__ import annotations

import os
import socket
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import BrokerError

__all__ = ["GoldenDiff", "ResultsDB", "format_diff"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sessions (
    session INTEGER PRIMARY KEY AUTOINCREMENT,
    sweep   TEXT NOT NULL,
    fn      TEXT NOT NULL,
    total   INTEGER NOT NULL,
    host    TEXT,
    note    TEXT,
    created REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS golden (
    fn      TEXT NOT NULL,
    label   TEXT NOT NULL,
    key     TEXT NOT NULL,
    sha256  TEXT NOT NULL,
    sweep   TEXT,
    blessed REAL NOT NULL,
    PRIMARY KEY (fn, label)
);
"""


@dataclass
class GoldenDiff:
    """One sweep compared against the golden baseline for its fn."""

    fn: str
    #: labels whose task key and result digest both match golden.
    matched: list = field(default_factory=list)
    #: ``(label, golden_sha, current_sha)`` — same task, different
    #: result.  Determinism regression or behavior change.
    drifted: list = field(default_factory=list)
    #: ``(label, golden_key, current_key)`` — the task itself changed;
    #: results are expected to differ and golden wants re-blessing.
    task_changed: list = field(default_factory=list)
    #: golden labels with no counterpart in the current sweep.
    missing: list = field(default_factory=list)
    #: current labels golden has never seen.
    novel: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No result drift (task changes and novel points are not
        failures — they mean "re-bless when vetted")."""
        return not self.drifted

    @property
    def baselined(self) -> bool:
        """Whether golden had anything to compare against at all."""
        return bool(
            self.matched or self.drifted or self.task_changed or self.missing
        )


def format_diff(diff: GoldenDiff) -> str:
    """Human-readable drift report for ``status``."""
    if not diff.baselined and not diff.novel:
        return f"{diff.fn}: no golden baseline and no results"
    if not diff.baselined:
        return (
            f"{diff.fn}: {len(diff.novel)} result(s), no golden baseline "
            f"(run `bless` to record one)"
        )
    lines = [
        f"{diff.fn}: {len(diff.matched)} match golden"
        + ("" if diff.clean else f", {len(diff.drifted)} DRIFTED")
    ]
    for label, want, got in diff.drifted:
        lines.append(
            f"  DRIFT {label}: golden {want[:12]} != current {got[:12]} "
            f"(same task, different result)"
        )
    if diff.task_changed:
        labels = ", ".join(label for label, _, _ in diff.task_changed[:4])
        more = len(diff.task_changed) - 4
        lines.append(
            f"  task definition changed: {labels}"
            + (f" (+{more} more)" if more > 0 else "")
        )
    if diff.missing:
        lines.append(f"  missing vs golden: {', '.join(diff.missing[:6])}")
    if diff.novel:
        lines.append(f"  not in golden yet: {len(diff.novel)} label(s)")
    return "\n".join(lines)


class ResultsDB:
    """Sessions + golden baselines for one broker directory."""

    def __init__(self, path):
        self.path = Path(path)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(
                str(self.path), timeout=30.0, isolation_level=None
            )
            self._conn.execute("PRAGMA busy_timeout = 30000")
            self._conn.executescript(_SCHEMA)
        except (OSError, sqlite3.Error) as exc:
            raise BrokerError(
                f"cannot open results DB {path}: {exc}"
            ) from exc

    @classmethod
    def for_broker(cls, broker_directory) -> "ResultsDB":
        """The results DB living next to a broker's ``queue.db``."""
        return cls(Path(broker_directory) / "results.db")

    # -- sessions -----------------------------------------------------------

    def record_session(
        self,
        sweep: str,
        fn: str,
        total: int,
        note: Optional[str] = None,
        host: Optional[str] = None,
    ) -> int:
        """Log one sweep submission; returns the session id.

        Re-submissions of the same sweep id are collapsed (idempotent,
        like the enqueue they mirror).
        """
        cur = self._conn.execute(
            "SELECT session FROM sessions WHERE sweep = ? "
            "ORDER BY session DESC LIMIT 1",
            (sweep,),
        ).fetchone()
        if cur is not None:
            return int(cur[0])
        host = host or f"{socket.gethostname()}:{os.getpid()}"
        row = self._conn.execute(
            "INSERT INTO sessions (sweep, fn, total, host, note, created) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (sweep, fn, int(total), host, note, time.time()),
        )
        return int(row.lastrowid)

    def sessions(self, limit: int = 50) -> list:
        """``(session, sweep, fn, total, host, note, created)`` rows,
        newest first."""
        return self._conn.execute(
            "SELECT session, sweep, fn, total, host, note, created "
            "FROM sessions ORDER BY session DESC LIMIT ?",
            (int(limit),),
        ).fetchall()

    # -- golden baseline ----------------------------------------------------

    def bless(self, fn: str, rows, sweep: Optional[str] = None) -> int:
        """Record *rows* (``(label, key, sha256)``) as the golden
        baseline for *fn*, replacing any previous blessing of those
        labels; returns how many were blessed."""
        now = time.time()
        count = 0
        for label, key, sha in rows:
            self._conn.execute(
                "INSERT OR REPLACE INTO golden "
                "(fn, label, key, sha256, sweep, blessed) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (fn, str(label), key, sha, sweep, now),
            )
            count += 1
        return count

    def golden_for(self, fn: str) -> dict:
        """``{label: (key, sha256)}`` currently blessed for *fn*."""
        return {
            label: (key, sha)
            for label, key, sha in self._conn.execute(
                "SELECT label, key, sha256 FROM golden WHERE fn = ?", (fn,)
            ).fetchall()
        }

    def golden_fns(self) -> list:
        """Point functions with any blessed baseline."""
        return [
            row[0]
            for row in self._conn.execute(
                "SELECT DISTINCT fn FROM golden ORDER BY fn"
            ).fetchall()
        ]

    def diff(self, fn: str, rows) -> GoldenDiff:
        """Compare *rows* (``(label, key, sha256)``) against the golden
        baseline for *fn*; see :class:`GoldenDiff` for the taxonomy."""
        golden = self.golden_for(fn)
        diff = GoldenDiff(fn)
        seen = set()
        for label, key, sha in rows:
            label = str(label)
            seen.add(label)
            if label not in golden:
                diff.novel.append(label)
                continue
            want_key, want_sha = golden[label]
            if key != want_key:
                diff.task_changed.append((label, want_key, key))
            elif sha != want_sha:
                diff.drifted.append((label, want_sha, sha))
            else:
                diff.matched.append(label)
        diff.missing = sorted(set(golden) - seen)
        return diff

    def close(self) -> None:
        self._conn.close()
