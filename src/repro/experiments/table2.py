"""Table 2: fairness comparison to the stock Linux assignment.

Eighteen technique variants, each reported as the percent decrease (over
the stock scheduler, positive = better) in max-flow, max-stretch, and
average process completion time.  The paper's best (Loop[45], δ=0.15 on
its IPC scale) showed 12.04 / 20.41 / 35.95; many basic-block variants
lost fairness — a shape this reproduction also exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.fairness import FairnessComparison
from repro.experiments.config import TABLE2_VARIANTS, ExperimentConfig
from repro.experiments.harness import run_tasks
from repro.experiments.runner import (
    TechniqueOutcome,
    make_workload,
    run_baseline,
    run_technique_point,
)
from repro.experiments.report import format_table, pct


@dataclass
class Table2Row:
    technique: str
    comparison: FairnessComparison
    outcome: TechniqueOutcome


@dataclass
class Table2Result:
    baseline: TechniqueOutcome
    rows: list
    config: ExperimentConfig

    def best_average_time(self) -> Table2Row:
        return max(self.rows, key=lambda r: r.comparison.average_time_decrease)


def run(
    config: ExperimentConfig = None,
    variants=TABLE2_VARIANTS,
    jobs=None,
    log=None,
) -> Table2Result:
    config = config or ExperimentConfig.fairness_paper()
    workload = make_workload(config)
    baseline = run_baseline(config, workload)
    outcomes = run_tasks(
        run_technique_point,
        [(config, name, workload, None) for name in variants],
        jobs=jobs,
        log=log,
        labels=list(variants),
    )
    rows = [
        Table2Row(name, outcome.fairness.versus(baseline.fairness), outcome)
        for name, outcome in zip(variants, outcomes)
    ]
    return Table2Result(baseline, rows, config)


def format_result(result: Table2Result) -> str:
    rows = [
        (
            row.technique,
            pct(row.comparison.max_flow_decrease),
            pct(row.comparison.max_stretch_decrease),
            pct(row.comparison.average_time_decrease),
            f"{row.outcome.switches:.0f}",
        )
        for row in result.rows
    ]
    return format_table(
        ("technique", "max-flow %", "max-stretch %", "avg time %", "switches"),
        rows,
        title=(
            "Table 2: % decrease over standard Linux assignment "
            f"(slots={result.config.slots}, interval={result.config.interval}s)"
        ),
    )


if __name__ == "__main__":
    print(format_result(run()))
