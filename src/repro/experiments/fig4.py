"""Figure 4: time overhead of phase marks (switch-to-"all cores").

"To measure the time overhead of phase marks and core switches instead
of switching to a specific core, we switch to 'all cores' ... the
difference in runtime between the unmodified binary and this
instrumented binary shows the cost of running our phase marks at the
predetermined program points.  Figure 4 shows results for workloads of
size 84."  The paper's best case was as little as 0.14% overhead, with
the loop technique lowest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.overhead import time_overhead
from repro.sim.checkpoint import task_checkpoint_manager
from repro.tuning.runtime import SwitchToAllRuntime
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_tasks
from repro.experiments.runner import make_workload, run_baseline, run_technique
from repro.experiments.report import format_table

#: The variants Figure 4 plots (a representative subset per class).
FIG4_VARIANTS = (
    "BB[10,0]", "BB[15,0]", "BB[15,2]", "BB[20,3]",
    "Int[30]", "Int[45]", "Int[60]",
    "Loop[30]", "Loop[45]", "Loop[60]",
)


@dataclass
class Fig4Result:
    """Fractional time overhead per variant."""

    overheads: dict  # variant -> fraction
    config: ExperimentConfig


def _point(task):
    """Harness worker: one switch-to-all-cores marked run."""
    config, workload, name = task
    return run_technique(
        config,
        name,
        workload=workload,
        runtime=SwitchToAllRuntime(config.resolved_machine()),
        checkpoint=task_checkpoint_manager(),
    )


def run(
    config: ExperimentConfig = None,
    variants=FIG4_VARIANTS,
    jobs=None,
    log=None,
) -> Fig4Result:
    """Measure mark-execution overhead for each variant.

    The paper used workloads of size 84; pass
    ``ExperimentConfig(slots=84)`` to match at full scale.
    """
    config = config or ExperimentConfig(slots=84, interval=400.0)
    workload = make_workload(config)
    baseline = run_baseline(config, workload)
    marked_runs = run_tasks(
        _point,
        [(config, workload, name) for name in variants],
        jobs=jobs,
        log=log,
        labels=list(variants),
    )
    overheads = {
        name: time_overhead(baseline.result, marked.result, config.interval)
        for name, marked in zip(variants, marked_runs)
    }
    return Fig4Result(overheads, config)


def format_result(result: Fig4Result) -> str:
    rows = [
        (name, f"{overhead:.3%}")
        for name, overhead in result.overheads.items()
    ]
    return format_table(
        ("technique", "time overhead"),
        rows,
        title=(
            f"Figure 4: time overhead, workload size "
            f"{result.config.slots} (switch-to-all-cores marks)"
        ),
    )


if __name__ == "__main__":
    print(format_result(run()))
