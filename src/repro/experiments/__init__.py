"""Experiment drivers: one module per table/figure of the paper.

Every module exposes ``run(config) -> <result dataclass>`` and
``format_result(result) -> str`` printing the same rows/series the paper
reports.  ``benchmarks/`` wraps these with pytest-benchmark; the modules
are also directly runnable for full-scale reproduction.

==========  ==============================================================
module       reproduces
==========  ==============================================================
fig3         Figure 3 — space overhead box plots per technique variant
fig4         Figure 4 — time overhead via switch-to-all-cores marks
table1       Table 1 — switches and isolated runtime per benchmark
fig5         Figure 5 — average cycles per core switch (log scale)
fig6         Figure 6 — throughput vs IPC threshold δ
fig7         Figure 7 — throughput vs injected clustering error
table2       Table 2 — fairness vs the stock scheduler, 18 variants
fig8         Figure 8 — speedup vs max-stretch trade-off scatter
extras       §III ATOM comparison, §IV-C2 lookahead sweep, §IV-C4
             min-size sweep, §VII 3-core setup, §II-A3 typing accuracy
==========  ==============================================================
"""

from repro.experiments.broker import Broker, task_key, worker_loop
from repro.experiments.config import (
    TABLE2_VARIANTS,
    ExperimentConfig,
)
from repro.experiments.results_db import GoldenDiff, ResultsDB
from repro.experiments.runner import (
    TechniqueOutcome,
    run_baseline,
    run_technique,
)

__all__ = [
    "TABLE2_VARIANTS",
    "Broker",
    "ExperimentConfig",
    "GoldenDiff",
    "ResultsDB",
    "TechniqueOutcome",
    "run_baseline",
    "run_technique",
    "task_key",
    "worker_loop",
]
