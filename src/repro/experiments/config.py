"""Shared experiment configuration.

:class:`ExperimentConfig` bundles everything a run needs — workload
size, interval, seed, Algorithm 2's δ, the machine, executor knobs — so
experiments differ only in what they sweep.  ``quick()`` shrinks the
workload for test/benchmark runs; ``paper()`` is the full-scale setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.instrument.marker import MarkingStrategy, parse_strategy
from repro.sim.machine import MachineConfig, core2quad_amp
from repro.tuning.runtime import PhaseTuningRuntime

#: The eighteen technique variants of Table 2.
TABLE2_VARIANTS = (
    "BB[10,0]", "BB[10,1]", "BB[10,2]", "BB[10,3]",
    "BB[15,0]", "BB[15,1]", "BB[15,2]", "BB[15,3]",
    "BB[20,0]", "BB[20,1]", "BB[20,2]", "BB[20,3]",
    "Int[30]", "Int[45]", "Int[60]",
    "Loop[30]", "Loop[45]", "Loop[60]",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one experimental run.

    Attributes:
        slots: workload size (paper: 18-84 simultaneous jobs).
        interval: measured interval in simulated seconds (paper: 400 s
            for throughput, 800 s for fairness).
        seed: workload queue seed; fixed per experiment so all technique
            variants see identical queues.
        ipc_threshold: Algorithm 2's δ.  The paper's best fairness run
            used 0.15 (its IPC scale); 0.12 is the calibrated analogue
            on this simulator's IPC scale.
        machine: the AMP (defaults to the paper's 4-core setup).
        contention_alpha: L2 bandwidth-contention strength.
        pollution_beta: shared-L2 pollution strength.
        tie_policy: tie handling in Algorithm 2 decisions.
    """

    slots: int = 18
    interval: float = 400.0
    seed: int = 101
    ipc_threshold: float = 0.12
    machine: Optional[MachineConfig] = None
    contention_alpha: float = 0.4
    pollution_beta: float = 0.6
    tie_policy: str = "free"

    def resolved_machine(self) -> MachineConfig:
        return self.machine or core2quad_amp()

    def make_runtime(self, delta: Optional[float] = None) -> PhaseTuningRuntime:
        """A fresh tuning runtime for one run."""
        return PhaseTuningRuntime(
            self.resolved_machine(),
            delta if delta is not None else self.ipc_threshold,
            tie_policy=self.tie_policy,
        )

    def strategy(self, name: str) -> MarkingStrategy:
        return parse_strategy(name)

    def with_(self, **changes) -> "ExperimentConfig":
        """Copy with fields replaced."""
        return replace(self, **changes)

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """Small configuration for tests and CI benchmarks."""
        return cls(slots=8, interval=90.0)

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """Full-scale configuration mirroring the paper's setup."""
        return cls(slots=18, interval=400.0)

    @classmethod
    def fairness_paper(cls) -> "ExperimentConfig":
        """Table 2 used an 800-second interval."""
        return cls(slots=18, interval=800.0)
