"""Shared networking hardening for the repo's HTTP surfaces.

Two subsystems speak HTTP over stdlib sockets — the artifact store
(:mod:`repro.store`) and the networked sweep broker
(:mod:`repro.experiments.broker_net`) — and both need the same three
defenses.  This module is their single implementation:

:class:`CooldownBreaker`
    A cooldown circuit breaker with a negative-result cache.  The first
    transport failure *trips* the breaker: until the cooldown elapses
    every operation short-circuits without touching the network, so a
    dead server costs one bounded timeout per cooldown window, never
    one per call.  Individual keys (a digest the server 404'd, a ref it
    does not hold) can be negative-cached for the same window.

:class:`RetryPolicy`
    Bounded exponential backoff with jitter for transient failures.
    Jitter decorrelates a fleet of workers retrying against the same
    recovering server (no thundering herd); the attempt budget keeps a
    hard-down server from hanging a caller.

:class:`AuthPolicy`
    Bearer-token authentication plus a readonly mode, enforced
    server-side.  With a token configured every request must carry
    ``Authorization: Bearer <token>`` (compared in constant time) or is
    rejected with 401; readonly mode rejects mutating requests with 403
    regardless of auth.  Without a token the server stays open —
    backwards compatible with every existing deployment.

Clients resolve their token from the ``REPRO_AUTH_TOKEN`` environment
variable (:func:`resolve_token`) so one exported secret covers the
store tiers and the broker transport alike.
"""

from __future__ import annotations

import hmac
import os
import random
import threading
import time
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "AUTH_TOKEN_ENV",
    "AuthPolicy",
    "CooldownBreaker",
    "RetryPolicy",
    "bearer_headers",
    "resolve_token",
]

#: Environment variable holding the shared bearer token.  Servers
#: started with ``--token`` (or this variable) require it on every
#: request; clients attach it automatically when set.
AUTH_TOKEN_ENV = "REPRO_AUTH_TOKEN"


def resolve_token(explicit: Optional[str] = None) -> Optional[str]:
    """The effective auth token: the explicit argument, else the
    ``REPRO_AUTH_TOKEN`` environment variable, else ``None`` (open)."""
    if explicit:
        return explicit
    env = os.environ.get(AUTH_TOKEN_ENV, "").strip()
    return env or None


def bearer_headers(token: Optional[str]) -> Dict[str, str]:
    """Request headers carrying *token* (empty when unauthenticated)."""
    if not token:
        return {}
    return {"Authorization": f"Bearer {token}"}


class AuthPolicy:
    """Server-side bearer-token + readonly policy.

    Args:
        token: required bearer token; ``None`` leaves the server open.
        readonly: reject every mutating request with 403 (mirrors,
            public result servers), whatever the auth outcome.
    """

    def __init__(self, token: Optional[str] = None,
                 readonly: bool = False) -> None:
        self.token = token or None
        self.readonly = bool(readonly)

    def check(self, authorization: Optional[str],
              mutating: bool) -> Optional[Tuple[int, str]]:
        """``None`` if the request may proceed, else ``(status, why)``.

        *authorization* is the raw ``Authorization`` header value.  The
        token comparison is constant-time (``hmac.compare_digest``), so
        the server never leaks prefix information through timing.
        """
        if self.token is not None:
            presented = ""
            if authorization and authorization.startswith("Bearer "):
                presented = authorization[len("Bearer "):]
            if not hmac.compare_digest(presented, self.token):
                return 401, "missing or invalid bearer token"
        if mutating and self.readonly:
            return 403, "server is readonly"
        return None


class CooldownBreaker:
    """Cooldown circuit breaker with a per-key negative cache.

    Thread-safe; one instance is shared by every thread using a given
    remote endpoint, so a single trip silences the whole process for
    the cooldown window.
    """

    def __init__(self, cooldown: float) -> None:
        self.cooldown = float(cooldown)
        self._lock = threading.Lock()
        self._dead_until = 0.0
        self._negative: Dict[str, float] = {}

    def trip(self) -> None:
        """Open the breaker for one cooldown window."""
        with self._lock:
            self._dead_until = time.monotonic() + self.cooldown

    def reset(self) -> None:
        """Close the breaker immediately (a request just succeeded)."""
        with self._lock:
            self._dead_until = 0.0

    @property
    def tripped(self) -> bool:
        with self._lock:
            return time.monotonic() < self._dead_until

    def remaining(self) -> float:
        """Seconds until the breaker closes (0 when already closed)."""
        with self._lock:
            return max(0.0, self._dead_until - time.monotonic())

    def unavailable(self, key: Optional[str] = None) -> bool:
        """Whether the endpoint (or *key* specifically) should be
        treated as an instant miss right now."""
        now = time.monotonic()
        with self._lock:
            if now < self._dead_until:
                return True
            if key is not None:
                until = self._negative.get(key)
                if until is not None:
                    if now < until:
                        return True
                    del self._negative[key]
        return False

    def remember_miss(self, key: str) -> None:
        """Negative-cache *key* for one cooldown window."""
        with self._lock:
            self._negative[key] = time.monotonic() + self.cooldown

    def forget(self, key: str) -> None:
        """Drop *key* from the negative cache (it was just written)."""
        with self._lock:
            self._negative.pop(key, None)


class RetryPolicy:
    """Bounded exponential backoff with jitter.

    ``delays()`` yields the sleep before each retry: attempt *i*
    (0-based) backs off ``base * 2**i`` capped at *cap*, scaled by a
    uniform jitter in ``[0.5, 1.5)`` so retrying workers decorrelate.

    Args:
        attempts: total tries including the first (>= 1).
        base: first backoff in seconds.
        cap: upper bound on any single backoff.
        jitter: disable only in tests that need exact timings.
    """

    def __init__(self, attempts: int = 3, base: float = 0.1,
                 cap: float = 2.0, jitter: bool = True) -> None:
        self.attempts = max(1, int(attempts))
        self.base = float(base)
        self.cap = float(cap)
        self.jitter = bool(jitter)

    def delays(self) -> Iterator[float]:
        """The ``attempts - 1`` sleeps between tries."""
        for i in range(self.attempts - 1):
            delay = min(self.cap, self.base * (2 ** i))
            if self.jitter:
                delay *= 0.5 + random.random()
            yield delay
