"""Exception hierarchy for the phase-based tuning library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AssemblyError(ReproError):
    """Raised when textual assembly cannot be parsed or encoded."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ProgramStructureError(ReproError):
    """Raised when a program representation violates a structural invariant.

    Examples: a branch targeting a label that does not exist, a basic block
    with a jump in its interior, or a CFG edge pointing outside the graph.
    """


class AnalysisError(ReproError):
    """Raised when a static analysis is given inputs it cannot handle."""


class InstrumentationError(ReproError):
    """Raised when binary rewriting cannot place a phase mark safely."""


class SimulationError(ReproError):
    """Raised when the AMP simulator reaches an inconsistent state."""


class SchedulingError(SimulationError):
    """Raised by schedulers, e.g. an affinity mask excluding every core."""


class AffinitySyscallError(SchedulingError):
    """An injected ``sched_setaffinity`` failure (EPERM/EINVAL-style).

    Raised by the fault injector when an affinity syscall is chosen to
    fail; the executor catches it, leaves the mask unchanged, and
    notifies the runtime so it can degrade gracefully.
    """

    def __init__(self, errno_name: str, pid: int | None = None):
        self.errno_name = errno_name
        self.pid = pid
        suffix = f" (pid {pid})" if pid is not None else ""
        super().__init__(f"sched_setaffinity failed with {errno_name}{suffix}")


class CounterError(SimulationError):
    """Raised by the performance-counter subsystem for invalid usage."""


class FaultError(SimulationError):
    """Raised when a fault-injection plan is malformed (bad rates, core
    ids out of range, negative event times)."""


class CheckpointError(SimulationError):
    """Raised by :mod:`repro.sim.checkpoint` when a checkpoint cannot be
    written, fails its integrity check on load (bad magic, truncation,
    digest mismatch), or does not match the simulation it is restored
    into."""


class StoreError(ReproError):
    """Raised by :mod:`repro.store` for invalid usage (malformed digests
    or ref names, an unusable store directory/URL).  Remote-tier
    *transport* failures are never raised — a dead or slow tier degrades
    to a miss — so a run can always fall back to local compute."""


class StoreCorruptionError(StoreError):
    """An object fetched from a store tier failed its digest
    verification.  Local tiers quarantine the damaged file before
    raising; readers treat the tier as a miss and fall through to the
    next tier (or recompute)."""


class CacheCorruptionError(ReproError):
    """Raised when a :class:`~repro.tuning.pipeline.PipelineCache`
    integrity check finds an entry whose stored key digest no longer
    matches its key."""


class TelemetryError(ReproError):
    """Raised by :mod:`repro.telemetry` for invalid configuration or a
    trace that fails schema validation."""


class WorkloadError(ReproError):
    """Raised when a workload specification is invalid (e.g. empty queue)."""


class MetricsError(ReproError):
    """Raised by :mod:`repro.metrics` on invalid samples or queries
    (negative latencies, out-of-range quantiles, unordered series)."""


class OpenSystemError(SimulationError):
    """Raised when an open-system plan is inconsistent (negative rates,
    bad class mixes, malformed breakdown windows)."""


class ExperimentError(ReproError):
    """Raised when an experiment configuration is inconsistent."""


class TaskTimeoutError(ExperimentError):
    """Raised when a harness task exceeds its per-task timeout and no
    retries remain."""


class BrokerError(ExperimentError):
    """Raised by :mod:`repro.experiments.broker` for invalid usage or a
    broker directory that cannot be opened/created (the harness catches
    this and degrades to the single-host pool backend)."""


class BrokerUnavailableError(BrokerError):
    """A networked broker server cannot be reached: the transport's
    retry budget is spent (or its circuit breaker is open) and the
    operation never happened.  ``run_tasks`` catches this (via
    :class:`BrokerError`) and degrades to the single-host pool; workers
    treat it as "poll again later" while their grace window lasts."""


class LeaseLostError(BrokerError):
    """A worker's lease on a task expired and was reclaimed (or the task
    was completed by another worker) before the worker finished; raised
    by heartbeat renewal so the worker can abandon the attempt."""


class QuarantinedTaskError(BrokerError):
    """A task exhausted its attempt budget and sits in quarantine; raised
    when a caller needs the task's result and no rescue path remains."""
