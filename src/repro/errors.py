"""Exception hierarchy for the phase-based tuning library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AssemblyError(ReproError):
    """Raised when textual assembly cannot be parsed or encoded."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ProgramStructureError(ReproError):
    """Raised when a program representation violates a structural invariant.

    Examples: a branch targeting a label that does not exist, a basic block
    with a jump in its interior, or a CFG edge pointing outside the graph.
    """


class AnalysisError(ReproError):
    """Raised when a static analysis is given inputs it cannot handle."""


class InstrumentationError(ReproError):
    """Raised when binary rewriting cannot place a phase mark safely."""


class SimulationError(ReproError):
    """Raised when the AMP simulator reaches an inconsistent state."""


class SchedulingError(SimulationError):
    """Raised by schedulers, e.g. an affinity mask excluding every core."""


class CounterError(SimulationError):
    """Raised by the performance-counter subsystem for invalid usage."""


class WorkloadError(ReproError):
    """Raised when a workload specification is invalid (e.g. empty queue)."""


class ExperimentError(ReproError):
    """Raised when an experiment configuration is inconsistent."""
