#!/usr/bin/env python3
"""Static-analysis explorer: watch the paper's pipeline on one program.

Assembles a small program with nested and sibling loops, then walks the
whole static half of phase-based tuning and prints what each stage sees:
block features and k-means typing, interval summarization, Algorithm 1's
loop type map T, the transition points every technique picks, and the
physically rewritten binary with its trampolines.
"""

from repro import StaticBlockTyper, annotate_program, instrument
from repro.analysis import (
    block_features,
    summarize_intervals,
    summarize_loops,
)
from repro.instrument import BBStrategy, IntervalStrategy, LoopStrategy
from repro.isa import assemble, disassemble

SOURCE = """
.program explorer
.region heap 33554432
.region table 1048576
.proc main
    movi r1, 0
outer:
    call transform
    movi r2, 0
scan:
    load r3, heap[r2]:4
    load r4, heap[r2]:4
    add r5, r5, r3
    add r5, r5, r4
    load r3, heap[r2]:4
    load r4, heap[r2]:4
    add r5, r5, r3
    add r5, r5, r4
    load r3, heap[r2]:4
    load r4, heap[r2]:4
    add r5, r5, r3
    add r5, r5, r4
    add r2, r2, 1
    cmp r2, 100000
    br lt, scan
    add r1, r1, 1
    cmp r1, 50
    br lt, outer
    ret
.endproc
.proc transform
    movi r6, 0
crunch:
    fmul f1, f1, f2
    fadd f2, f2, f1
    fmul f3, f3, f4
    fadd f4, f4, f3
    fmul f1, f1, f2
    fadd f2, f2, f1
    fmul f3, f3, f4
    fadd f4, f4, f3
    fmul f1, f1, f2
    fadd f2, f2, f1
    fmul f3, f3, f4
    fadd f4, f4, f3
    add r6, r6, 1
    cmp r6, 200000
    br lt, crunch
    ret
.endproc
"""


def main() -> None:
    program = assemble(SOURCE)
    typer = StaticBlockTyper(num_types=2)
    typing = typer.type_blocks(program)
    aprog = annotate_program(program, typing)

    print("== block typing (type 0 = memory-bound cluster) ==")
    for acfg in aprog:
        for block in acfg:
            features = block_features(block, program)
            print(
                f"  {block.uid:14s} type={typing.type_of(block)} "
                f"len={len(block):3d} compute={features.compute_intensity:5.2f} "
                f"memory={features.memory_boundedness:6.2f}"
            )

    print("\n== interval summaries (main) ==")
    for typed in summarize_intervals(aprog["main"]).intervals:
        print(
            f"  interval@{typed.header}: nodes={typed.interval.nodes} "
            f"type={typed.dominant_type} sigma={typed.strength:.2f}"
        )

    print("\n== Algorithm 1 loop type map T ==")
    summary = summarize_loops(aprog)
    for uid, typed in sorted(summary.all_loops.items()):
        in_t = any(t.uid == uid for t in summary.typed_loops)
        print(
            f"  {uid:16s} type={typed.dominant_type} "
            f"sigma={typed.strength:.2f} size={typed.size_instrs:3d} "
            f"{'[in T]' if in_t else '[absorbed]'}"
        )

    print("\n== transition points per technique ==")
    for strategy in (BBStrategy(10, 0), IntervalStrategy(30), LoopStrategy(15)):
        inst = instrument(program, strategy, typing=typing)
        print(
            f"  {strategy.name:10s} {len(inst.marks)} marks, "
            f"+{inst.added_bytes} B ({inst.space_overhead:.1%})"
        )
        for mark in inst.marks:
            print(f"     {mark}")

    print("\n== physically rewritten binary (Loop[15]) ==")
    inst = instrument(program, LoopStrategy(15), typing=typing)
    print(disassemble(inst.materialize()))


if __name__ == "__main__":
    main()
