#!/usr/bin/env python3
"""Quickstart: tune one benchmark and watch phase-based tuning work.

Builds the SPEC-like 183.equake (rapidly alternating cache/stream
phases), instruments it with the paper's best technique (Loop[45]),
and runs it on the simulated 4-core AMP — first under the stock
scheduler with a memory-bound co-runner polluting the shared L2, then
with the tuning runtime attached.
"""

from repro import (
    LoopStrategy,
    PhaseTuningRuntime,
    Simulation,
    SimProcess,
    TraceGenerator,
    core2quad_amp,
    tune_program,
)
from repro.sim.process import Trace
from repro.workloads import spec_benchmark


def run_pair(machine, trace_a, trace_b, runtime=None):
    """Run equake (a) next to a streaming co-runner (b)."""
    sim = Simulation(machine, runtime=runtime)
    equake = SimProcess(
        1, "183.equake", Trace(trace_a.nodes), machine.all_cores_mask,
        isolated_time=1.0,
    )
    streamer = SimProcess(
        2, "459.GemsFDTD", Trace(trace_b.nodes), machine.all_cores_mask,
        isolated_time=1.0,
    )
    sim.add_process(equake, 0.0)
    sim.add_process(streamer, 0.0)
    sim.run(10_000.0)
    return equake


def main() -> None:
    machine = core2quad_amp()
    print(f"machine: {machine}")

    bench = spec_benchmark("183.equake")
    tuned = tune_program(bench.program, LoopStrategy(45), machine, bench.spec)
    print(f"\ninstrumented: {tuned.instrumented}")
    for mark in tuned.instrumented.marks:
        print(f"  {mark}")
    print(f"space overhead: {tuned.space_overhead:.2%}")
    print(f"isolated runtime: {tuned.isolated_seconds:.2f} s")

    generator = TraceGenerator(machine)
    gems = spec_benchmark("459.GemsFDTD")
    gems_trace = generator.generate(gems.program, gems.spec)

    baseline = run_pair(machine, tuned.baseline_trace, gems_trace)
    print(f"\nstock scheduler : equake finished in {baseline.completion:.2f} s")

    runtime = PhaseTuningRuntime(machine, ipc_threshold=0.12)
    result = run_pair(machine, tuned.tuned_trace, gems_trace, runtime=runtime)
    print(f"phase-based tune: equake finished in {result.completion:.2f} s")
    print(f"core switches: {result.stats.switches:.0f}")
    decided = {
        phase_type: getattr(state.decided, "name", state.decided)
        for phase_type, state in result.tuner_state.items()
        if state.decided is not None
    }
    print(f"phase-type assignments: {decided}")
    speedup = 100 * (baseline.completion - result.completion) / baseline.completion
    print(f"completion-time reduction: {speedup:+.1f}%")


if __name__ == "__main__":
    main()
