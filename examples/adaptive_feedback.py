#!/usr/bin/env python3
"""Feedback adaptation (Section VI-B): recovering from stale decisions.

"The workload on a system may change the perceived characteristics of
the individual cores ... simple feedback mechanisms can be added."

A long-running application alternates between a cache-resident phase and
a streaming phase; its cache phase gets pinned to the fast cores.  Then
two streaming hogs arrive, pinned to the fast pair, and trash its shared
L2 — the old decision is now wrong.  The one-shot runtime (the paper's
evaluated configuration) keeps it forever; the feedback runtime
re-samples periodically, notices the fast pair's measured IPC has
collapsed, and moves to the now-better slow cores.
"""

from repro.experiments.extras import feedback_adaptation


def main() -> None:
    for resample_after in (None, 200, 40):
        if resample_after is None:
            result = feedback_adaptation(resample_after=10**9)  # Effectively off.
            label = "one-shot (paper's evaluated runtime)"
        else:
            result = feedback_adaptation(resample_after=resample_after)
            label = f"feedback, re-sample every {resample_after} firings"
        print(
            f"{label:45s} instructions retired: "
            f"{result.feedback_instructions:.3e} "
            f"({result.feedback_gain:+.1f}% vs one-shot baseline, "
            f"{result.resamples} re-samples)"
        )


if __name__ == "__main__":
    main()
