#!/usr/bin/env python3
"""The paper's headline experiment, end to end.

Builds an 18-slot workload of randomly drawn SPEC-like benchmarks
(Section IV-A2), runs it under the stock O(1)-style scheduler and under
phase-based tuning with Loop[45], and prints the Table 2 metrics:
max-flow, max-stretch, and average process time, plus throughput.

Run with ``--quick`` for a reduced configuration.
"""

import argparse

from repro import (
    LoopStrategy,
    PhaseTuningRuntime,
    Workload,
    WorkloadRun,
    core2quad_amp,
    fairness_report,
    throughput_improvement,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=18)
    parser.add_argument("--interval", type=float, default=400.0)
    parser.add_argument("--seed", type=int, default=101)
    parser.add_argument("--delta", type=float, default=0.12)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()
    if args.quick:
        args.slots, args.interval = 8, 90.0

    machine = core2quad_amp()
    workload = Workload.random(args.slots, seed=args.seed)
    print(
        f"workload: {args.slots} slots, {args.interval:.0f} s interval, "
        f"seed {args.seed}"
    )

    baseline = WorkloadRun(workload, machine).run(args.interval)
    base_fair = fairness_report(baseline.completed)
    print(
        f"\nstock scheduler : {base_fair.completed} completed, "
        f"avg {base_fair.average_time:.2f} s, "
        f"max-flow {base_fair.max_flow:.2f} s, "
        f"max-stretch {base_fair.max_stretch:.2f}"
    )

    tuned_run = WorkloadRun(workload, machine, LoopStrategy(45))
    tuned = tuned_run.run(
        args.interval, runtime=PhaseTuningRuntime(machine, args.delta)
    )
    tuned_fair = fairness_report(tuned.completed)
    print(
        f"phase-based tune: {tuned_fair.completed} completed, "
        f"avg {tuned_fair.average_time:.2f} s, "
        f"max-flow {tuned_fair.max_flow:.2f} s, "
        f"max-stretch {tuned_fair.max_stretch:.2f}, "
        f"{tuned.total_switches():.0f} switches"
    )

    comparison = tuned_fair.versus(base_fair)
    print(
        f"\n% decrease over stock (positive = better):\n"
        f"  max-flow    {comparison.max_flow_decrease:+.2f}%\n"
        f"  max-stretch {comparison.max_stretch_decrease:+.2f}%\n"
        f"  avg time    {comparison.average_time_decrease:+.2f}%\n"
        f"  throughput  "
        f"{throughput_improvement(baseline, tuned, args.interval):+.2f}%"
    )


if __name__ == "__main__":
    main()
