#!/usr/bin/env python3
"""Tune once, run anywhere: one binary, three different AMPs.

The paper's portability claim: the static analysis makes no assumption
about the target machine, so the *same instrumented binary* adapts to
whatever asymmetry it lands on.  This example builds a phased program
with the programmatic builder, instruments it once, and runs that one
artifact on (a) the paper's 4-core AMP, (b) the Section VII 3-core AMP,
and (c) a custom machine with a third "medium" core type — the runtime
re-measures and re-decides on each.
"""

from repro import (
    LoopStrategy,
    PhaseTuningRuntime,
    ProgramBuilder,
    Simulation,
    SimProcess,
    TraceGenerator,
    core2quad_amp,
    instrument,
    three_core_amp,
)
from repro.sim import BehaviorSpec
from repro.sim.core import Core, CoreType
from repro.sim.machine import MachineConfig
from repro.sim.process import Trace


def build_program():
    pb = ProgramBuilder("custom-phased")
    pb.region("heap", 32 << 20)
    with pb.proc("main") as b:
        b.movi("r1", 0)
        b.movi("r2", 30)
        b.label("epoch")
        # Compute phase: FP-dense.
        b.movi("r3", 0)
        b.label("crunch")
        for _ in range(24):
            b.fmul("f1", "f1", "f2")
            b.fadd("f2", "f2", "f1")
        b.add("r3", "r3", 1)
        b.cmp("r3", 300_000)
        b.br("lt", "crunch")
        # Memory phase: streaming scan.
        b.movi("r4", 0)
        b.label("scan")
        for _ in range(20):
            b.load("r5", "heap", index="r4", stride=4)
            b.add("r6", "r6", "r5")
        b.add("r4", "r4", 1)
        b.cmp("r4", 150_000)
        b.br("lt", "scan")
        b.add("r1", "r1", 1)
        b.cmp("r1", "r2")
        b.br("lt", "epoch")
        b.ret()
    spec = BehaviorSpec(
        trip_counts={
            ("main", "epoch"): 30,
            ("main", "crunch"): 300_000,
            ("main", "scan"): 150_000,
        }
    )
    return pb.build(), spec


def tri_speed_machine() -> MachineConfig:
    """A machine the binary has never seen: three core types."""
    fast = CoreType("fast", 2.8)
    medium = CoreType("medium", 2.0)
    slow = CoreType("slow", 1.2)
    return MachineConfig(
        "tri-speed",
        (
            Core(0, fast, l2_group=0),
            Core(1, medium, l2_group=0),
            Core(2, slow, l2_group=1),
        ),
    )


def run_on(machine, instrumented, spec) -> None:
    generator = TraceGenerator(machine)
    trace = generator.generate(instrumented, spec)
    baseline_trace = generator.generate(instrumented.program, spec)

    def once(runtime, use_trace):
        sim = Simulation(machine, runtime=runtime)
        proc = SimProcess(
            1, "custom", Trace(use_trace.nodes), machine.all_cores_mask,
            isolated_time=1.0,
        )
        competitor = SimProcess(
            2, "noise", Trace(baseline_trace.nodes), machine.all_cores_mask,
            isolated_time=1.0,
        )
        sim.add_process(proc, 0.0)
        sim.add_process(competitor, 0.0)
        sim.run(10_000.0)
        return proc

    stock = once(None, baseline_trace)
    tuned = once(PhaseTuningRuntime(machine, 0.12), trace)
    decided = {
        pt: getattr(st.decided, "name", st.decided)
        for pt, st in tuned.tuner_state.items()
        if st.decided is not None
    }
    gain = 100 * (stock.completion - tuned.completion) / stock.completion
    print(f"{machine}")
    print(
        f"  stock {stock.completion:7.2f} s | tuned {tuned.completion:7.2f} s "
        f"({gain:+.1f}%) | assignments {decided} | "
        f"switches {tuned.stats.switches:.0f}"
    )


def main() -> None:
    program, spec = build_program()
    instrumented = instrument(program, LoopStrategy(45))
    print(f"one binary: {instrumented}\n")
    for machine in (core2quad_amp(), three_core_amp(), tri_speed_machine()):
        run_on(machine, instrumented, spec)


if __name__ == "__main__":
    main()
