"""Table 2 bench: fairness comparison, all eighteen variants."""

from benchmarks.conftest import full_scale
from repro.experiments import table2
from repro.experiments.config import TABLE2_VARIANTS


def test_table2_fairness(benchmark, fairness_config):
    variants = TABLE2_VARIANTS if full_scale() else (
        "BB[10,0]", "BB[15,0]", "BB[15,2]", "BB[20,3]",
        "Int[30]", "Int[45]", "Int[60]",
        "Loop[30]", "Loop[45]", "Loop[60]",
    )
    result = benchmark.pedantic(
        table2.run, args=(fairness_config, variants), rounds=1, iterations=1
    )
    print()
    print(table2.format_result(result))

    by_name = {row.technique: row.comparison for row in result.rows}

    # The naive basic-block technique's frequent marks cost throughput
    # and fairness (the paper's motivation for intervals and loops): it
    # never beats the loop technique's balance.
    bb_naive = by_name["BB[15,0]"]
    loop45 = by_name["Loop[45]"]
    assert (
        loop45.max_stretch_decrease + loop45.average_time_decrease
        >= bb_naive.max_stretch_decrease + bb_naive.average_time_decrease - 1.0
    )

    # Interval/loop techniques keep fairness within a few percent of the
    # stock scheduler (the paper: their best rows improve it).
    for name in ("Int[45]", "Loop[45]"):
        assert by_name[name].max_stretch_decrease > -20.0

    # Loop[60] typically marks nothing at quick scale: all-zero row is
    # acceptable; at least one interval/loop variant must improve some
    # fairness metric.
    gains = [
        max(c.max_flow_decrease, c.max_stretch_decrease)
        for n, c in by_name.items()
        if n.startswith(("Int", "Loop"))
    ]
    assert max(gains) > 0.0
