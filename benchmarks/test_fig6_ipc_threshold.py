"""Figure 6 bench: throughput vs the IPC threshold δ.

The paper's claim: "Extreme thresholds may show a degradation in
throughput because the entire workload eventually migrates away from one
core type.  Between these extremes lies an optimal value."
"""

from repro.experiments import fig6


def test_fig6_ipc_threshold(benchmark, bench_config):
    deltas = (0.005, 0.05, 0.12, 0.25, 0.6)
    result = benchmark.pedantic(
        fig6.run,
        args=(bench_config, deltas),
        kwargs={"strategy": "Loop[45]"},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig6.format_result(result))

    improvements = dict(zip(result.deltas, result.improvements))
    # The extreme-low threshold pins everything to the fast pair: clear
    # degradation relative to the interior.
    interior_best = max(improvements[d] for d in (0.05, 0.12, 0.25))
    assert improvements[0.005] < interior_best - 2.0
    # Very high thresholds decide nothing: close to the baseline.
    assert abs(improvements[0.6]) < interior_best + 3.0
    # The interior beats both extremes (the paper's optimum shape).
    assert interior_best >= improvements[0.005]
    assert interior_best >= improvements[0.6] - 0.5
