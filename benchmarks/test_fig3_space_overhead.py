"""Figure 3 bench: space overhead box plots per technique variant."""

from repro.experiments import fig3
from repro.experiments.config import TABLE2_VARIANTS


def test_fig3_space_overhead(benchmark):
    result = benchmark.pedantic(
        fig3.run, args=(TABLE2_VARIANTS,), rounds=1, iterations=1
    )
    print()
    print(fig3.format_result(result))

    # Shape assertions against the paper's Figure 3 trends.
    medians = {n: r.summary.median for n, r in result.reports.items()}
    assert medians["Loop[45]"] < medians["Int[45]"] < medians["BB[15,0]"]
    assert medians["BB[20,0]"] <= medians["BB[10,0]"]
    assert medians["Loop[60]"] <= medians["Loop[30]"]
    # Best technique: under 10%, with every mark at most 78 bytes.
    assert medians["Loop[45]"] < 0.10
    assert max(r.max_mark_bytes for r in result.reports.values()) <= 78
