"""Wall-clock benchmark of the simulator's executor paths.

Times the three quantum-execution modes — stepped (``batched=False``,
the tree-walking reference), per-quantum batched (``coalesce=False``),
and macro-quantum coalesced (the default) — on two scenarios, and
writes ``BENCH_sim.json``:

* the table2 fairness workload (paper scale by default), built once so
  every mode runs against the same warm static pipeline and the timing
  is simulation wall time proper;
* a 1000-process synthetic workload on a 16-core AMP, the
  queue-pressure shape where per-turn overhead dominates;
* an equally sized open-system run (same core count, arrivals offered
  over the same interval, plus cancellations and breakdown windows) —
  gated to stay within 2x the closed coalesced time, so dynamic-event
  churn provably degrades coalescing gracefully rather than
  collapsing it.

It also runs ``python -m repro.experiments table2`` end to end in
subprocesses, with and without ``--no-coalesce``, and compares stdout.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim.py           # paper scale
    PYTHONPATH=src python benchmarks/bench_sim.py --quick   # CI smoke

Two properties are load-independent and therefore *gated* (nonzero
exit on violation):

* all three modes must produce exactly equal results — same completion
  floats, switch counts, buckets, idle accounting — on both scenarios;
* the coalesced and per-quantum table2 CLI runs must print
  byte-identical stdout.

The wall-clock numbers and speedups depend on the host, so they are
reported, not gated.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.sim.executor import NO_BATCH_ENV, NO_COALESCE_ENV
from repro.sim.machine import core2quad_amp, many_core_amp
from repro.sim.opensys import OpenSystemPlan, OpenSystemRun
from repro.tuning.pipeline import PipelineCache
from repro.workloads.workload import Workload, WorkloadRun

_REPO = Path(__file__).resolve().parent.parent


def _result_summary(result):
    """Everything a SimulationResult reports, as comparable plain data."""
    return (
        result.time,
        tuple(
            (
                p.pid,
                p.name,
                p.completion,
                p.stats.instructions,
                tuple(sorted(p.stats.cycles_by_type.items())),
                p.stats.switches,
                p.stats.migrations,
                p.stats.mark_overhead_cycles,
                p.stats.cpu_time,
            )
            for p in result.completed
        ),
        tuple(sorted(result.throughput_buckets.items())),
        tuple(sorted(result.idle_time_by_core.items())),
    )


#: (mode name, environment overrides) for the three executor paths; the
#: kill-switch environment variables reach the Simulation constructor
#: through WorkloadRun, exactly as they would a CLI invocation.
_MODES = (
    ("stepped", {NO_BATCH_ENV: "1", NO_COALESCE_ENV: "1"}),
    ("batched", {NO_BATCH_ENV: "", NO_COALESCE_ENV: "1"}),
    ("coalesced", {NO_BATCH_ENV: "", NO_COALESCE_ENV: ""}),
)


def _timed_modes(build_run, interval) -> tuple:
    """Run a freshly built workload once per mode; returns
    (per-mode seconds dict, summaries-all-equal bool)."""
    seconds = {}
    summaries = {}
    for name, env in _MODES:
        saved = {key: os.environ.pop(key, None) for key in env}
        for key, value in env.items():
            if value:
                os.environ[key] = value
        try:
            run = build_run()
            start = time.perf_counter()
            result = run.run(interval)
            seconds[name] = time.perf_counter() - start
            summaries[name] = _result_summary(result)
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
    identical = (
        summaries["stepped"] == summaries["batched"] == summaries["coalesced"]
    )
    return seconds, identical


def _mode_entry(seconds, identical) -> dict:
    return {
        "stepped_seconds": round(seconds["stepped"], 3),
        "batched_seconds": round(seconds["batched"], 3),
        "coalesced_seconds": round(seconds["coalesced"], 3),
        "coalesced_speedup_vs_stepped": round(
            seconds["stepped"] / seconds["coalesced"], 2
        ),
        "coalesced_speedup_vs_batched": round(
            seconds["batched"] / seconds["coalesced"], 2
        ),
        "results_identical": identical,
    }


def _table2_workload(config, cache):
    workload = Workload.random(config.slots, seed=config.seed)

    def build():
        return WorkloadRun(workload, core2quad_amp(), cache=cache)

    return build


def _synthetic_workload(slots, cache):
    """*slots* simultaneous processes on a 16-core AMP: per-core queues
    dozens deep, so wall time is pure scheduling-turn throughput."""
    workload = Workload.random(slots, seed=7, queue_length=64)
    machine = many_core_amp(8, 8)

    def build():
        return WorkloadRun(workload, machine, cache=cache)

    return build


def _opensys_bench(arrivals, interval, cache) -> tuple:
    """An open-system run sized like the synthetic closed scenario:
    *arrivals* jobs offered over *interval* seconds on the 16-core AMP,
    with cancellations and breakdown windows layered on — the
    heavy-churn shape where every dynamic event bounds a coalescing
    window.  Returns (per-mode seconds, summaries-identical)."""
    machine = many_core_amp(8, 8)
    plan = OpenSystemPlan(
        seed=7,
        rate=arrivals / interval,
        horizon=interval,
        classes=("164.gzip", "183.equake", "429.mcf"),
        cancel_fraction=0.05,
        breakdowns=2,
    )
    seconds = {}
    summaries = {}
    for name, env in _MODES:
        saved = {key: os.environ.pop(key, None) for key in env}
        for key, value in env.items():
            if value:
                os.environ[key] = value
        try:
            run = OpenSystemRun(plan, machine, cache=cache)
            start = time.perf_counter()
            result = run.run()
            seconds[name] = time.perf_counter() - start
            summaries[name] = json.dumps(result.to_dict(), sort_keys=True)
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
    identical = (
        summaries["stepped"] == summaries["batched"] == summaries["coalesced"]
    )
    return seconds, identical


def _table2_stdout_bench() -> dict:
    """End-to-end CLI byte-identity: table2 with and without
    --no-coalesce must print the same bytes."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src")
    env.pop(NO_COALESCE_ENV, None)
    env.pop(NO_BATCH_ENV, None)
    outputs = {}
    seconds = {}
    for name, extra in (("coalesced", []), ("per_quantum", ["--no-coalesce"])):
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments", *extra, "table2"],
            capture_output=True,
            env=env,
            cwd=_REPO,
            check=True,
        )
        seconds[name] = time.perf_counter() - start
        outputs[name] = proc.stdout
    return {
        "per_quantum_seconds": round(seconds["per_quantum"], 2),
        "coalesced_seconds": round(seconds["coalesced"], 2),
        "speedup": round(seconds["per_quantum"] / seconds["coalesced"], 2),
        "byte_identical": outputs["coalesced"] == outputs["per_quantum"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small configuration (CI smoke): short interval, 200-process "
        "synthetic, no CLI subprocess comparison",
    )
    parser.add_argument(
        "--output",
        default=str(_REPO / "BENCH_sim.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.quick:
        fairness = ExperimentConfig(slots=18, interval=120.0, seed=101)
        synthetic_slots, synthetic_interval = 200, 300.0
    else:
        fairness = ExperimentConfig.fairness_paper()
        synthetic_slots, synthetic_interval = 1000, 1500.0

    report = {
        "scale": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
    }
    failures = []
    cache = PipelineCache()

    seconds, identical = _timed_modes(
        _table2_workload(fairness, cache), fairness.interval
    )
    entry = _mode_entry(seconds, identical)
    report["table2_workload"] = entry
    print(
        f"table2 workload  stepped {seconds['stepped']:6.2f}s   "
        f"batched {seconds['batched']:6.2f}s   "
        f"coalesced {seconds['coalesced']:6.2f}s "
        f"(x{entry['coalesced_speedup_vs_stepped']} vs stepped)"
    )
    if not identical:
        failures.append("table2 workload: executor modes disagree")

    seconds, identical = _timed_modes(
        _synthetic_workload(synthetic_slots, cache), synthetic_interval
    )
    entry = _mode_entry(seconds, identical)
    report[f"synthetic_{synthetic_slots}"] = entry
    print(
        f"{synthetic_slots}-proc synth  stepped {seconds['stepped']:6.2f}s   "
        f"batched {seconds['batched']:6.2f}s   "
        f"coalesced {seconds['coalesced']:6.2f}s "
        f"(x{entry['coalesced_speedup_vs_stepped']} vs stepped)"
    )
    if not identical:
        failures.append(f"{synthetic_slots}-process synthetic: modes disagree")
    closed_coalesced = seconds["coalesced"]

    seconds, identical = _opensys_bench(
        synthetic_slots, synthetic_interval, cache
    )
    entry = _mode_entry(seconds, identical)
    ratio = seconds["coalesced"] / closed_coalesced
    entry["open_vs_closed_coalesced_ratio"] = round(ratio, 2)
    report[f"opensys_{synthetic_slots}"] = entry
    print(
        f"{synthetic_slots}-job opensys  stepped {seconds['stepped']:6.2f}s   "
        f"batched {seconds['batched']:6.2f}s   "
        f"coalesced {seconds['coalesced']:6.2f}s "
        f"(x{ratio:.2f} vs closed coalesced)"
    )
    if not identical:
        failures.append(
            f"{synthetic_slots}-job open system: executor modes disagree"
        )
    # Dynamic-event churn bounds coalescing windows but must not
    # collapse them: the open run stays within 2x the closed run.
    if ratio > 2.0:
        failures.append(
            f"open-system coalesced run {ratio:.2f}x closed (budget 2.0x)"
        )

    if not args.quick:
        stdout_entry = _table2_stdout_bench()
        report["table2_cli_stdout"] = stdout_entry
        print(
            f"table2 CLI  per-quantum {stdout_entry['per_quantum_seconds']}s   "
            f"coalesced {stdout_entry['coalesced_seconds']}s   "
            f"byte-identical: {stdout_entry['byte_identical']}"
        )
        if not stdout_entry["byte_identical"]:
            failures.append("table2 CLI stdout differs with --no-coalesce")

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {output}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
