"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the rows/series it reports.  By default the experiments run at a
reduced "quick" scale so ``pytest benchmarks/ --benchmark-only``
completes in minutes; set ``REPRO_FULL_SCALE=1`` to run the paper-scale
configurations (18 slots, 400-800 s intervals).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "0") == "1"


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    if full_scale():
        return ExperimentConfig.paper()
    return ExperimentConfig(slots=10, interval=120.0, seed=101)


@pytest.fixture(scope="session")
def fairness_config() -> ExperimentConfig:
    if full_scale():
        return ExperimentConfig.fairness_paper()
    return ExperimentConfig(slots=10, interval=160.0, seed=101)
