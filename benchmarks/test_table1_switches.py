"""Table 1 bench: switches and isolated runtime per benchmark."""

from repro.experiments import table1
from repro.workloads.spec import TABLE1_REFERENCE


def test_table1_switches(benchmark):
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    print()
    print(table1.format_result(result))

    rows = {row.name: row for row in result.rows}
    assert len(rows) == 15

    # Table 1's zero rows: GemsFDTD (single phase type) and astar (no
    # phases at all) never switch.
    assert rows["459.GemsFDTD"].switches == 0
    assert rows["473.astar"].switches == 0
    assert rows["473.astar"].marks == 0

    # equake's switch *rate* tops the suite, as in the paper.
    rates = {
        name: row.switches / row.runtime_seconds
        for name, row in rows.items()
    }
    assert rates["183.equake"] == max(rates.values()) > 0

    # Runtimes preserve the paper's relative ordering among uncapped rows.
    def paper_runtime(name):
        return TABLE1_REFERENCE[name][1]

    uncapped = ["183.equake", "172.mgrid", "401.bzip2"]
    ours = [rows[n].runtime_seconds for n in uncapped]
    paper = [paper_runtime(n) for n in uncapped]
    assert sorted(range(3), key=lambda i: ours[i]) == sorted(
        range(3), key=lambda i: paper[i]
    )
