"""Wall-clock benchmark of the experiment harness and pipeline cache.

Runs a set of experiments twice — serially (``REPRO_JOBS=1`` semantics)
and through the process-pool harness — and writes
``BENCH_experiments.json`` with per-experiment wall times, the
serial/parallel speedup, and the static-pipeline cache hit rates.

Usage::

    PYTHONPATH=src python benchmarks/bench_harness.py           # quick scale
    PYTHONPATH=src python benchmarks/bench_harness.py --full    # paper scale
    PYTHONPATH=src python benchmarks/bench_harness.py --quick   # CI smoke

The serial leg runs first from a cold pipeline cache, so its timing
includes every static-pipeline build; its populated cache is then
inherited by the pool's forked workers, which is exactly how
``python -m repro.experiments`` behaves.

Two properties are load-independent and therefore *gated* (nonzero
exit on violation):

* every experiment rerun against a warm cache must hit it for 100% of
  its static-pipeline lookups, and
* memoizing the static pipeline must be at least a 2x speedup over
  rebuilding it cold.

The wall-clock numbers themselves depend on the host (core count,
load), so they are reported, not gated.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.experiments import extras, fig4, fig6, fig7, table1, table2
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import worker_count
from repro.tuning.pipeline import (
    PipelineCache,
    clear_default_cache,
    default_cache,
    tune_program,
)
from repro.workloads.spec import spec_benchmark
from repro.workloads.workload import Workload


def _experiments(config, fairness, quick):
    """(name, callable(jobs)) pairs; callables are closures over config."""
    deltas = (0.02, 0.08, 0.18) if quick else None

    def fig4_run(jobs):
        return fig4.run(config, jobs=jobs)

    def fig6_run(jobs):
        if deltas is None:
            return fig6.run(config, strategy="Loop[45]", jobs=jobs)
        return fig6.run(config, deltas=deltas, strategy="Loop[45]", jobs=jobs)

    def fig7_run(jobs):
        return fig7.run(config, strategy="Loop[45]", jobs=jobs)

    def table1_run(jobs):
        return table1.run(jobs=jobs)

    def table2_run(jobs):
        return table2.run(fairness, jobs=jobs)

    def sweeps_run(jobs):
        extras.lookahead_sweep(config, jobs=jobs)
        return extras.min_size_sweep(config, jobs=jobs)

    pairs = [
        ("fig6", fig6_run),
        ("table1", table1_run),
        ("fig4", fig4_run),
    ]
    if not quick:
        pairs += [
            ("fig7", fig7_run),
            ("table2", table2_run),
            ("extras-sweeps", sweeps_run),
        ]
    return pairs


def _timed(fn, jobs):
    start = time.perf_counter()
    fn(jobs)
    return time.perf_counter() - start


def _static_pipeline_bench(config) -> dict:
    """Cold vs memoized wall time of the full static pipeline over the
    benchmark set the experiments actually touch."""
    names = sorted(
        Workload.random(config.slots, seed=config.seed).benchmark_names()
    )
    programs = [spec_benchmark(name).program for name in names]
    cache = PipelineCache()
    start = time.perf_counter()
    for program in programs:
        tune_program(program, cache=cache)
    cold = time.perf_counter() - start
    cache.reset_stats()
    start = time.perf_counter()
    for program in programs:
        tune_program(program, cache=cache)
    warm = time.perf_counter() - start
    return {
        "benchmarks": len(programs),
        "cold_seconds": round(cold, 3),
        "warm_seconds": round(warm, 4),
        "memoization_speedup": round(cold / warm, 1) if warm else None,
        "warm_hit_rate": cache.stats()["hit_rate"],
        "_speedup_raw": (cold / warm) if warm else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny configuration and experiment subset (CI smoke)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale configuration (minutes)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel worker count (default: REPRO_JOBS or cpu count)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_experiments.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.quick:
        config = ExperimentConfig(slots=6, interval=40.0, seed=101)
        fairness = ExperimentConfig(slots=6, interval=60.0, seed=101)
    elif args.full:
        config = ExperimentConfig.paper()
        fairness = ExperimentConfig.fairness_paper()
    else:
        config = ExperimentConfig(slots=10, interval=120.0, seed=101)
        fairness = ExperimentConfig(slots=10, interval=160.0, seed=101)

    jobs = worker_count(args.jobs)
    report = {
        "scale": "quick" if args.quick else ("full" if args.full else "default"),
        "cpu_count": os.cpu_count(),
        "parallel_jobs": jobs,
        "experiments": {},
    }
    failures = []

    static = _static_pipeline_bench(config)
    static_speedup = static.pop("_speedup_raw")
    report["static_pipeline"] = static
    print(
        f"static pipeline ({static['benchmarks']} benchmarks): "
        f"cold {static['cold_seconds']:.2f}s   "
        f"memoized {static['warm_seconds']:.4f}s "
        f"(x{static['memoization_speedup']})"
    )
    if static_speedup < 2.0:
        failures.append(
            f"static-pipeline memoization speedup {static_speedup:.2f}x "
            f"is below the 2x gate"
        )
    if static["warm_hit_rate"] != 1.0:
        failures.append(
            f"static-pipeline warm hit rate "
            f"{static['warm_hit_rate']:.0%} != 100%"
        )

    for name, fn in _experiments(config, fairness, args.quick):
        clear_default_cache()
        serial = _timed(fn, 1)
        cold_stats = default_cache().stats()

        default_cache().reset_stats()
        warm = _timed(fn, 1)
        warm_stats = default_cache().stats()

        parallel = _timed(fn, jobs)

        entry = {
            "serial_cold_seconds": round(serial, 3),
            "serial_warm_seconds": round(warm, 3),
            "parallel_seconds": round(parallel, 3),
            "parallel_speedup": round(serial / parallel, 2) if parallel else None,
            "memoization_speedup": round(serial / warm, 2) if warm else None,
            "pipeline_cache": {
                "cold": cold_stats,
                "warm": warm_stats,
            },
        }
        report["experiments"][name] = entry
        print(
            f"{name:14s} serial {serial:6.2f}s   warm-cache {warm:6.2f}s "
            f"(x{entry['memoization_speedup']})   "
            f"parallel[{jobs}] {parallel:6.2f}s (x{entry['parallel_speedup']})   "
            f"warm hit rate {warm_stats['hit_rate']:.0%}"
        )
        if warm_stats["hit_rate"] != 1.0:
            failures.append(
                f"{name}: warm pipeline-cache hit rate "
                f"{warm_stats['hit_rate']:.0%} != 100%"
            )

    fig6_entry = report["experiments"].get("fig6")
    if fig6_entry is not None:
        # The warm serial leg runs the simulations against a fully
        # cached static pipeline, so it is the simulation time proper.
        report["fig6_sim_seconds"] = fig6_entry["serial_warm_seconds"]

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {output}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
