"""Wall-clock benchmark of the experiment harness and pipeline cache.

Runs a set of experiments twice — serially (``REPRO_JOBS=1`` semantics)
and through the process-pool harness — and writes
``BENCH_experiments.json`` with per-experiment wall times, the
serial/parallel speedup, and the static-pipeline cache hit rates.

Usage::

    PYTHONPATH=src python benchmarks/bench_harness.py           # quick scale
    PYTHONPATH=src python benchmarks/bench_harness.py --full    # paper scale
    PYTHONPATH=src python benchmarks/bench_harness.py --quick   # CI smoke

The serial leg runs first from a cold pipeline cache, so its timing
includes every static-pipeline build; its populated cache is then
inherited by the pool's forked workers, which is exactly how
``python -m repro.experiments`` behaves.

Two properties are load-independent and therefore *gated* (nonzero
exit on violation):

* every experiment rerun against a warm cache must hit it for 100% of
  its static-pipeline lookups, and
* memoizing the static pipeline must be at least a 2x speedup over
  rebuilding it cold.

The wall-clock numbers themselves depend on the host (core count,
load), so they are reported, not gated.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments import extras, fig4, fig6, fig7, table1, table2
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import worker_count
from repro.store import LocalStore
from repro.tuning.pipeline import (
    PipelineCache,
    clear_default_cache,
    default_cache,
    tune_program,
)
from repro.workloads.spec import spec_benchmark
from repro.workloads.workload import Workload


def _experiments(config, fairness, quick):
    """(name, callable(jobs)) pairs; callables are closures over config."""
    deltas = (0.02, 0.08, 0.18) if quick else None

    def fig4_run(jobs):
        return fig4.run(config, jobs=jobs)

    def fig6_run(jobs):
        if deltas is None:
            return fig6.run(config, strategy="Loop[45]", jobs=jobs)
        return fig6.run(config, deltas=deltas, strategy="Loop[45]", jobs=jobs)

    def fig7_run(jobs):
        return fig7.run(config, strategy="Loop[45]", jobs=jobs)

    def table1_run(jobs):
        return table1.run(jobs=jobs)

    def table2_run(jobs):
        return table2.run(fairness, jobs=jobs)

    def sweeps_run(jobs):
        extras.lookahead_sweep(config, jobs=jobs)
        return extras.min_size_sweep(config, jobs=jobs)

    pairs = [
        ("fig6", fig6_run),
        ("table1", table1_run),
        ("fig4", fig4_run),
    ]
    if not quick:
        pairs += [
            ("fig7", fig7_run),
            ("table2", table2_run),
            ("extras-sweeps", sweeps_run),
        ]
    return pairs


def _timed(fn, jobs):
    start = time.perf_counter()
    fn(jobs)
    return time.perf_counter() - start


def _static_pipeline_bench(config) -> dict:
    """Cold vs memoized wall time of the full static pipeline over the
    benchmark set the experiments actually touch."""
    names = sorted(
        Workload.random(config.slots, seed=config.seed).benchmark_names()
    )
    programs = [spec_benchmark(name).program for name in names]
    cache = PipelineCache()
    start = time.perf_counter()
    for program in programs:
        tune_program(program, cache=cache)
    cold = time.perf_counter() - start
    cache.reset_stats()
    start = time.perf_counter()
    for program in programs:
        tune_program(program, cache=cache)
    warm = time.perf_counter() - start
    return {
        "benchmarks": len(programs),
        "cold_seconds": round(cold, 3),
        "warm_seconds": round(warm, 4),
        "memoization_speedup": round(cold / warm, 1) if warm else None,
        "warm_hit_rate": cache.stats()["hit_rate"],
        "_speedup_raw": (cold / warm) if warm else float("inf"),
    }


def _store_bench(config, workdir) -> dict:
    """Second-host cold start through a warm artifact store.

    Three legs over the same static-pipeline workload:

    * ``recompute``: empty everything — the cost a new host pays
      without a store (this leg also leaves *workdir*/store warm);
    * ``warm_store``: empty local cache + the warm store as a remote
      tier — every entry is fetched and digest-verified, zero rebuilt;
    * ``dead_remote``: empty local cache + an unreachable remote — the
      breaker trips once and the host falls back to recompute with
      identical results.
    """
    names = sorted(
        Workload.random(config.slots, seed=config.seed).benchmark_names()
    )
    programs = [spec_benchmark(name).program for name in names]
    store_dir = Path(workdir) / "store"
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_STORE_URL", "REPRO_STORE_TIMEOUT")
    }

    def _leg(url, disk_dir):
        if url is None:
            os.environ.pop("REPRO_STORE_URL", None)
        else:
            os.environ["REPRO_STORE_URL"] = url
        cache = PipelineCache(disk_dir=disk_dir)
        start = time.perf_counter()
        for program in programs:
            tune_program(program, cache=cache)
        elapsed = time.perf_counter() - start
        # Byte-level identity via the CAS itself: each leg leaves a
        # ref -> sha256 map of every pipeline artifact it used, and the
        # digest names the exact bytes.  Equal maps mean equal output.
        return elapsed, cache.stats(), LocalStore(disk_dir).refs("pipeline")

    try:
        cold, _, baseline = _leg(None, store_dir)
        warm, warm_stats, warm_refs = _leg(
            str(store_dir), Path(workdir) / "second-host"
        )
        os.environ["REPRO_STORE_TIMEOUT"] = "0.2"
        dead, dead_stats, dead_refs = _leg(
            "http://127.0.0.1:9", Path(workdir) / "cut-off-host"
        )
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    return {
        "benchmarks": len(programs),
        "recompute_seconds": round(cold, 3),
        "warm_store_seconds": round(warm, 4),
        "warm_store_speedup": round(cold / warm, 1) if warm else None,
        "warm_store_misses": warm_stats["misses"],
        "warm_store_hits": warm_stats["store_hits"],
        "dead_remote_seconds": round(dead, 3),
        "dead_remote_misses": dead_stats["misses"],
        "_speedup_raw": (cold / warm) if warm else float("inf"),
        # The warm host fetches only the entries it actually looks up
        # (a top-level hit short-circuits the lower pipeline levels),
        # so it holds a subset of the baseline's refs — every one of
        # which must name the exact same bytes.  The cut-off host
        # rebuilds everything and must reproduce the full map.
        "_warm_identical": bool(warm_refs) and all(
            baseline.get(name) == digest
            for name, digest in warm_refs.items()
        ),
        "_dead_identical": bool(baseline) and dead_refs == baseline,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny configuration and experiment subset (CI smoke)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale configuration (minutes)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel worker count (default: REPRO_JOBS or cpu count)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_experiments.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.quick:
        config = ExperimentConfig(slots=6, interval=40.0, seed=101)
        fairness = ExperimentConfig(slots=6, interval=60.0, seed=101)
    elif args.full:
        config = ExperimentConfig.paper()
        fairness = ExperimentConfig.fairness_paper()
    else:
        config = ExperimentConfig(slots=10, interval=120.0, seed=101)
        fairness = ExperimentConfig(slots=10, interval=160.0, seed=101)

    jobs = worker_count(args.jobs)
    report = {
        "scale": "quick" if args.quick else ("full" if args.full else "default"),
        "cpu_count": os.cpu_count(),
        "parallel_jobs": jobs,
        "experiments": {},
    }
    failures = []

    static = _static_pipeline_bench(config)
    static_speedup = static.pop("_speedup_raw")
    report["static_pipeline"] = static
    print(
        f"static pipeline ({static['benchmarks']} benchmarks): "
        f"cold {static['cold_seconds']:.2f}s   "
        f"memoized {static['warm_seconds']:.4f}s "
        f"(x{static['memoization_speedup']})"
    )
    if static_speedup < 2.0:
        failures.append(
            f"static-pipeline memoization speedup {static_speedup:.2f}x "
            f"is below the 2x gate"
        )
    if static["warm_hit_rate"] != 1.0:
        failures.append(
            f"static-pipeline warm hit rate "
            f"{static['warm_hit_rate']:.0%} != 100%"
        )

    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as workdir:
        store = _store_bench(config, workdir)
    store_speedup = store.pop("_speedup_raw")
    warm_identical = store.pop("_warm_identical")
    dead_identical = store.pop("_dead_identical")
    report["artifact_store"] = store
    print(
        f"artifact store ({store['benchmarks']} benchmarks): "
        f"recompute {store['recompute_seconds']:.2f}s   "
        f"warm store {store['warm_store_seconds']:.4f}s "
        f"(x{store['warm_store_speedup']})   "
        f"dead remote {store['dead_remote_seconds']:.2f}s"
    )
    if store_speedup < 2.0:
        failures.append(
            f"warm-store cold start speedup {store_speedup:.2f}x is below "
            f"the 2x gate"
        )
    if store["warm_store_misses"] != 0:
        failures.append(
            f"warm-store leg recomputed {store['warm_store_misses']} "
            f"pipeline entries; expected 0"
        )
    if not warm_identical:
        failures.append("warm-store leg produced different pipeline output")
    if not dead_identical:
        failures.append(
            "dead-remote fallback produced different pipeline output"
        )

    for name, fn in _experiments(config, fairness, args.quick):
        clear_default_cache()
        serial = _timed(fn, 1)
        cold_stats = default_cache().stats()

        default_cache().reset_stats()
        warm = _timed(fn, 1)
        warm_stats = default_cache().stats()

        parallel = _timed(fn, jobs)

        entry = {
            "serial_cold_seconds": round(serial, 3),
            "serial_warm_seconds": round(warm, 3),
            "parallel_seconds": round(parallel, 3),
            "parallel_speedup": round(serial / parallel, 2) if parallel else None,
            "memoization_speedup": round(serial / warm, 2) if warm else None,
            "pipeline_cache": {
                "cold": cold_stats,
                "warm": warm_stats,
            },
        }
        report["experiments"][name] = entry
        print(
            f"{name:14s} serial {serial:6.2f}s   warm-cache {warm:6.2f}s "
            f"(x{entry['memoization_speedup']})   "
            f"parallel[{jobs}] {parallel:6.2f}s (x{entry['parallel_speedup']})   "
            f"warm hit rate {warm_stats['hit_rate']:.0%}"
        )
        if warm_stats["hit_rate"] != 1.0:
            failures.append(
                f"{name}: warm pipeline-cache hit rate "
                f"{warm_stats['hit_rate']:.0%} != 100%"
            )

    fig6_entry = report["experiments"].get("fig6")
    if fig6_entry is not None:
        # The warm serial leg runs the simulations against a fully
        # cached static pipeline, so it is the simulation time proper.
        report["fig6_sim_seconds"] = fig6_entry["serial_warm_seconds"]

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {output}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
