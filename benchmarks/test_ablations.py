"""Ablation benches for DESIGN.md's modelling decisions.

Each ablation flips one of the interpretive or physical choices the
design document calls out and shows what it buys:

* ``cycle_metric``: reference (TSC-style) vs core-clock IPC;
* ``tie_policy``: free vs literal-Algorithm-2 noise pinning;
* ``pollution_beta``: shared-L2 pollution on vs off;
* ``contention_alpha``: L2 bandwidth contention on vs off.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import make_workload
from repro.metrics import fairness_report, throughput_improvement
from repro.tuning import PhaseTuningRuntime
from repro.workloads import WorkloadRun


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(slots=10, interval=120.0, seed=101)


def _comparison(config, runtime_kwargs=None, executor_kwargs=None):
    machine = config.resolved_machine()
    workload = make_workload(config)
    executor_kwargs = executor_kwargs or {}
    base = WorkloadRun(workload, machine).run(config.interval, **executor_kwargs)
    runtime = PhaseTuningRuntime(
        machine, config.ipc_threshold, **(runtime_kwargs or {})
    )
    tuned = WorkloadRun(workload, machine, config.strategy("Loop[45]")).run(
        config.interval, runtime=runtime, **executor_kwargs
    )
    thr = throughput_improvement(base, tuned, config.interval)
    fb = fairness_report(base.completed)
    ft = fairness_report(tuned.completed)
    return thr, ft.versus(fb)


def test_ablation_cycle_metric(benchmark, config):
    def run():
        reference = _comparison(config, {"cycle_metric": "reference"})
        core = _comparison(config, {"cycle_metric": "core"})
        return reference, core

    (ref_thr, ref_cmp), (core_thr, core_cmp) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print(f"reference-cycle IPC: throughput {ref_thr:+.2f}%")
    print(f"core-cycle IPC     : throughput {core_thr:+.2f}%")
    # The reference metric is the design's load-bearing choice: it must
    # not do worse than the core metric.
    assert ref_thr >= core_thr - 1.0


def test_ablation_tie_policy(benchmark, config):
    def run():
        free = _comparison(config, {"tie_policy": "free"})
        literal = _comparison(config, {"tie_policy": "algorithm"})
        return free, literal

    (free_thr, _), (literal_thr, _) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print(f"tie policy free     : throughput {free_thr:+.2f}%")
    print(f"tie policy algorithm: throughput {literal_thr:+.2f}%")
    # Noise-pinning every core-insensitive phase restricts the balancer:
    # it must not beat the free policy by a meaningful margin.
    assert free_thr >= literal_thr - 1.0


def test_ablation_pollution(benchmark, config):
    def run():
        with_pollution = _comparison(
            config, executor_kwargs={"pollution_beta": 0.6}
        )
        without = _comparison(config, executor_kwargs={"pollution_beta": 0.0})
        return with_pollution, without

    (with_thr, _), (without_thr, _) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print(f"pollution on : tuned throughput {with_thr:+.2f}%")
    print(f"pollution off: tuned throughput {without_thr:+.2f}%")
    # Pollution is a benefit channel for tuning (segregation pays);
    # removing it must not *increase* the tuned advantage much.
    assert with_thr >= without_thr - 1.5


def test_ablation_contention(benchmark, config):
    def run():
        with_contention = _comparison(
            config, executor_kwargs={"contention_alpha": 0.4}
        )
        without = _comparison(
            config, executor_kwargs={"contention_alpha": 0.0}
        )
        return with_contention, without

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    (with_thr, _), (without_thr, _) = results
    print()
    print(f"contention on : tuned throughput {with_thr:+.2f}%")
    print(f"contention off: tuned throughput {without_thr:+.2f}%")
    # Both configurations must stay functional (no collapse).
    assert with_thr > -5.0 and without_thr > -5.0
