"""Benches for the Section VI discussion features.

VI-A multi-threaded applications, VI-B feedback adaptation, VI-C
many-core scalability — the paper's "future directions" that the library
implements in full.
"""

from repro.experiments import ExperimentConfig, extras


def test_multithreaded_application(benchmark):
    result = benchmark.pedantic(
        extras.multithreaded_comparison, kwargs={"threads": 2},
        rounds=1, iterations=1,
    )
    print()
    print(
        f"2-thread 172.mgrid + background streamers: makespan "
        f"{result.baseline_makespan:.2f}s stock vs "
        f"{result.tuned_makespan:.2f}s tuned "
        f"({result.makespan_decrease:+.1f}%), "
        f"{result.total_switches:.0f} switches"
    )
    # VI-A's claim is transparency: threads share the marks' tuning
    # state and the app runs unmodified.
    assert result.decisions_shared
    assert result.makespan_decrease > -25.0  # No pathological collapse.


def test_feedback_adaptation(benchmark):
    result = benchmark.pedantic(
        extras.feedback_adaptation, rounds=1, iterations=1
    )
    print()
    print(
        f"post-shock instructions: one-shot {result.standard_instructions:.3e} "
        f"vs feedback {result.feedback_instructions:.3e} "
        f"({result.feedback_gain:+.1f}%, {result.resamples} re-samples)"
    )
    # The feedback runtime escapes the polluted fast pair; the one-shot
    # runtime cannot.
    assert result.feedback_gain > 10.0


def test_many_core_scalability(benchmark, bench_config):
    config = bench_config.with_(slots=max(bench_config.slots, 16))

    def run():
        return extras.many_core_speedup(config, fast_cores=4, slow_cores=4)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"8-core AMP (4 fast, 4 slow): avg {result.average_time_decrease:+.2f}%, "
        f"throughput {result.throughput_improvement:+.2f}%, "
        f"max-stretch {result.max_stretch_decrease:+.2f}%"
    )
    assert result.throughput_improvement > -5.0
