"""Figure 4 bench: time overhead via switch-to-all-cores marks.

The paper measured workloads of size 84; the quick scale uses the bench
config's slot count (set REPRO_FULL_SCALE=1 and this runs at 84 slots).
"""

from benchmarks.conftest import full_scale
from repro.experiments import fig4
from repro.experiments.config import ExperimentConfig


def test_fig4_time_overhead(benchmark, bench_config):
    if full_scale():
        config = ExperimentConfig(slots=84, interval=400.0, seed=101)
    else:
        config = bench_config
    result = benchmark.pedantic(
        fig4.run, args=(config,), rounds=1, iterations=1
    )
    print()
    print(fig4.format_result(result))

    # Overheads are small (paper: as little as 0.14%); the loop
    # technique executes marks least often.
    assert all(v < 0.15 for v in result.overheads.values())
    assert (
        result.overheads["Loop[45]"]
        <= result.overheads["BB[15,0]"] + 1e-9
    )
