"""Figure 7 bench: throughput with injected clustering error.

The paper: "With a 10% error we see almost no loss in performance and
with 20% error we still see a significant performance increase.  At 30%
error we see little performance improvement."
"""

from repro.experiments import fig7


def test_fig7_clustering_error(benchmark, bench_config):
    errors = (0.0, 0.1, 0.2, 0.3)
    result = benchmark.pedantic(
        fig7.run,
        args=(bench_config, errors),
        kwargs={"strategy": "Loop[45]"},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig7.format_result(result))

    by_error = dict(zip(result.errors, result.improvements))
    # 10% error costs almost nothing relative to perfect typing.
    assert by_error[0.1] > by_error[0.0] - 2.0
    # Heavy error degrades relative to the best observed level; the
    # technique must not *gain* from wrong types.
    best = max(by_error.values())
    assert by_error[0.3] <= best + 0.5
