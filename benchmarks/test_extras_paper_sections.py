"""Benches for results the paper reports in prose.

* §III — instrumented binaries run ~10x faster than ATOM-style ones.
* §IV-C2 — lookahead depth sweep.
* §IV-C4 — minimum section size sweep.
* §VII — the 3-core (2 fast, 1 slow) AMP.
* §II-A3 — static typing misclassifies ~15% of loops.
"""

import math

from repro.experiments import extras


def test_atom_comparison(benchmark):
    result = benchmark.pedantic(extras.atom_comparison, rounds=1, iterations=1)
    print()
    print(extras.format_atom(result))
    # The paper's 10x execution-speed ratio shows up as the per-probe
    # dynamic cost ratio of the two instrumentation styles.
    assert result.mean_dynamic_ratio() >= 10.0
    for row in result.rows:
        assert row.atom_probe_bytes > row.mark_bytes


def test_lookahead_sweep(benchmark, bench_config):
    result = benchmark.pedantic(
        extras.lookahead_sweep,
        args=(bench_config,),
        kwargs={"depths": (0, 1, 2, 3)},
        rounds=1,
        iterations=1,
    )
    print()
    print(extras.format_sweep(result))
    assert len(result.throughput) == 4
    assert all(math.isfinite(v) for v in result.throughput)


def test_min_size_sweep(benchmark, bench_config):
    result = benchmark.pedantic(
        extras.min_size_sweep,
        args=(bench_config,),
        kwargs={"sizes": (30, 45, 60)},
        rounds=1,
        iterations=1,
    )
    print()
    print(extras.format_sweep(result))
    assert len(result.throughput) == 3


def test_three_core_amp(benchmark, bench_config):
    result = benchmark.pedantic(
        extras.three_core_speedup, args=(bench_config,), rounds=1, iterations=1
    )
    print()
    print(
        "3-core AMP (2 fast, 1 slow): avg time "
        f"{result.average_time_decrease:+.2f}%, throughput "
        f"{result.throughput_improvement:+.2f}%, max-stretch "
        f"{result.max_stretch_decrease:+.2f}%"
    )
    # Section VII: "performance results for our technique are similar"
    # on the 3-core machine — the tuned run must not collapse.
    assert result.throughput_improvement > -10.0


def test_typing_accuracy(benchmark):
    result = benchmark.pedantic(extras.typing_accuracy, rounds=1, iterations=1)
    print()
    print(
        f"static typing: {result.misclassified}/{result.total_loops} loops "
        f"misclassified ({result.error_rate:.1%}); paper reports ~15%"
    )
    assert result.error_rate < 1 / 3
