"""Figure 5 bench: average cycles per core switch (log scale)."""

import math

from repro.experiments import fig5


def test_fig5_cycles_per_switch(benchmark):
    result = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    print()
    print(fig5.format_result(result))

    switching_rows = [
        row for row in result.table1.rows if row.switches > 0
    ]
    assert switching_rows

    # Every switching benchmark amortizes the ~1000-cycle switch by at
    # least three orders of magnitude (the paper: most are ~10^10
    # cycles/switch against a 10^3-cycle cost).
    for row in switching_rows:
        assert result.amortization(row.name) > 1e3

    # equake sits at the cheap end of the log-scale plot, the long
    # memory codes at the expensive end — the paper's Figure 5 shape.
    cps = {row.name: row.cycles_per_switch for row in switching_rows}
    assert cps["183.equake"] == min(cps.values())
    assert max(cps.values()) / cps["183.equake"] > 10
