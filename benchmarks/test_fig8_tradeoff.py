"""Figure 8 bench: the speedup vs fairness trade-off scatter."""

from repro.experiments import fig8, table2


def test_fig8_tradeoff(benchmark, fairness_config):
    variants = (
        "BB[10,0]", "BB[15,0]", "BB[15,2]",
        "Int[45]", "Loop[45]", "Loop[60]",
    )

    def run():
        return fig8.run(table2=table2.run(fairness_config, variants))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(fig8.format_result(result))

    assert len(result.points) == len(variants)
    by_name = {p.technique: p for p in result.points}

    # The paper: "our interval and loop techniques perform quite well at
    # balancing these two metrics" — their combined score is at least
    # the naive BB variants'.
    def balance(p):
        return p.speedup + p.fairness

    structured = max(
        balance(by_name[n]) for n in ("Int[45]", "Loop[45]", "Loop[60]")
    )
    naive = max(balance(by_name[n]) for n in ("BB[10,0]", "BB[15,0]"))
    assert structured >= naive - 1.0
