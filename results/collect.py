"""Collect full-scale results for EXPERIMENTS.md."""
import time
from repro.experiments import (extras, fig3, fig4, fig5, fig6, fig7, fig8, table1, table2)
from repro.experiments.config import ExperimentConfig, TABLE2_VARIANTS

def log(msg):
    print(f"[{time.strftime('%H:%M:%S')}] {msg}", flush=True)

log("fig3...")
r3 = fig3.run()
print(fig3.format_result(r3), flush=True)

log("table1...")
r1 = table1.run()
print(table1.format_result(r1), flush=True)
print(fig5.format_result(fig5.run(r1)), flush=True)

log("fig4 (84 slots)...")
r4 = fig4.run(ExperimentConfig(slots=84, interval=400.0, seed=101))
print(fig4.format_result(r4), flush=True)

log("fig6...")
r6 = fig6.run(ExperimentConfig.paper(), strategy="Loop[45]")
print(fig6.format_result(r6), flush=True)
r6b = fig6.run(ExperimentConfig.paper(), strategy="BB[15,0]")
print(fig6.format_result(r6b), flush=True)

log("fig7...")
r7 = fig7.run(ExperimentConfig.paper(), strategy="Loop[45]")
print(fig7.format_result(r7), flush=True)

log("table2 (800s, all 18 variants)...")
r2 = table2.run(ExperimentConfig.fairness_paper())
print(table2.format_result(r2), flush=True)
print(fig8.format_result(fig8.run(table2=r2)), flush=True)

log("extras...")
print(extras.format_atom(extras.atom_comparison()), flush=True)
acc = extras.typing_accuracy()
print(f"typing accuracy: {acc.misclassified}/{acc.total_loops} = {acc.error_rate:.1%}", flush=True)
look = extras.lookahead_sweep(ExperimentConfig.paper())
print(extras.format_sweep(look), flush=True)
size = extras.min_size_sweep(ExperimentConfig.paper())
print(extras.format_sweep(size), flush=True)
tc = extras.three_core_speedup(ExperimentConfig.paper())
print(f"3-core AMP: avg {tc.average_time_decrease:+.2f}% thr {tc.throughput_improvement:+.2f}% ms {tc.max_stretch_decrease:+.2f}%", flush=True)
log("done")
