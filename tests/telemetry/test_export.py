"""Chrome trace export: structure, validation, and disk round-trip."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    TimelineAnalyzer,
    TraceRecorder,
    chrome_trace,
    load_chrome_trace,
    merge_metrics,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)


def _recorder():
    rec = TraceRecorder(categories=frozenset({"exec", "task", "tuning"}))
    sim = rec.begin_run("sim:amp")
    rec.instant("exec", "migrate", 1.5, tid=1001, args={"pid": 1, "from": 0})
    rec.counter("exec", "idle", 10.0, 4.25, tid=2)
    wall = rec.begin_run("harness", clock="wall")
    rec.span("task", "point", 0.25, 2.0, tid=0, args={"index": 3})
    rec.incr("harness.tasks")
    return rec, sim, wall


# -- chrome_trace structure -----------------------------------------------------


def test_chrome_trace_has_process_name_metadata_per_run():
    rec, sim, wall = _recorder()
    obj = chrome_trace(rec)
    metas = [e for e in obj["traceEvents"] if e["ph"] == "M"]
    names = {e["pid"]: e["args"]["name"] for e in metas}
    assert names == {sim: "sim:amp [sim clock]", wall: "harness [wall clock]"}


def test_chrome_trace_converts_seconds_to_microseconds():
    rec, sim, wall = _recorder()
    events = chrome_trace(rec)["traceEvents"]
    instant = next(e for e in events if e.get("name") == "migrate")
    assert instant["ph"] == "i" and instant["s"] == "t"
    assert instant["ts"] == pytest.approx(1.5e6)
    span = next(e for e in events if e.get("name") == "point")
    assert span["ph"] == "X"
    assert (span["ts"], span["dur"]) == (pytest.approx(0.25e6), pytest.approx(2e6))
    counter = next(e for e in events if e.get("name") == "idle")
    assert counter["ph"] == "C" and counter["args"] == {"value": 4.25}


def test_chrome_trace_is_json_serializable():
    rec, _, _ = _recorder()
    json.dumps(chrome_trace(rec))


# -- validation -----------------------------------------------------------------


def test_validate_counts_events():
    rec, _, _ = _recorder()
    obj = chrome_trace(rec)
    # 3 recorded events + 2 process_name metadata records.
    assert validate_chrome_trace(obj) == 5


@pytest.mark.parametrize("mutate,message", [
    (lambda o: o.pop("traceEvents"), "no traceEvents"),
    (lambda o: o["traceEvents"].append("nope"), "not an object"),
    (lambda o: o["traceEvents"].append({"ph": "Z", "name": "x"}), "unknown phase"),
    (lambda o: o["traceEvents"][2].pop("name"), "has no name"),
    (lambda o: o["traceEvents"][2].update(pid="one"), "not an integer"),
    (lambda o: o["traceEvents"][2].update(ts=-5.0), "non-negative"),
])
def test_validate_rejects_malformed(mutate, message):
    rec, _, _ = _recorder()
    obj = chrome_trace(rec)
    mutate(obj)
    with pytest.raises(TelemetryError, match=message):
        validate_chrome_trace(obj)


def test_validate_accepts_json_text_and_path(tmp_path):
    rec, _, _ = _recorder()
    path = write_chrome_trace(rec, tmp_path / "trace.json")
    assert validate_chrome_trace(path) == 5
    assert validate_chrome_trace(path.read_text()) == 5


# -- disk round-trip ------------------------------------------------------------


def test_load_chrome_trace_inverts_export(tmp_path):
    rec, _, _ = _recorder()
    path = write_chrome_trace(rec, tmp_path / "trace.json")
    runs, events = load_chrome_trace(path)
    assert runs == rec.runs
    assert len(events) == len(rec.events)
    for loaded, original in zip(events, rec.events):
        ph, cat, name, run, ts, tid, value, args = original
        lph, lcat, lname, lrun, lts, ltid, lvalue, largs = loaded
        assert (lph, lcat, lname, lrun, ltid) == (ph, cat, name, run, tid)
        assert lts == pytest.approx(ts)
        if ph == "X" or ph == "C":
            assert lvalue == pytest.approx(value)
        if ph == "I" or ph == "X":
            assert largs == args


def test_analyzer_from_file_matches_from_recorder(tmp_path):
    rec, sim, _ = _recorder()
    live = TimelineAnalyzer.from_recorder(rec)
    path = write_chrome_trace(rec, tmp_path / "trace.json")
    loaded = TimelineAnalyzer.from_file(path)
    assert loaded.runs() == live.runs()
    assert loaded.switches(sim, 1) == live.switches(sim, 1) == 1.0
    assert loaded.timeline(sim).idle_by_core == {2: 4.25}


# -- metrics --------------------------------------------------------------------


def test_merge_metrics_sums_keywise():
    merged = merge_metrics({"a": 1.0, "b": 2.0}, {"a": 0.5, "c": 3.0})
    assert merged == {"a": 1.5, "b": 2.0, "c": 3.0}


def test_write_metrics_sorted_json(tmp_path):
    rec = TraceRecorder()
    rec.incr("z.last")
    rec.incr("a.first", 2.0)
    path = write_metrics(rec, tmp_path / "metrics.json")
    loaded = json.loads(path.read_text())
    assert loaded == {"a.first": 2.0, "z.last": 1.0}
    assert list(loaded) == ["a.first", "z.last"]
