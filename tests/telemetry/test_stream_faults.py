"""Satellite coverage: the telemetry stream under a nonzero FaultPlan.

Two contracts:

* ``DegradationEvent`` ordering — the runtime's degradation log is
  append-only in simulation-time order, so it can be replayed against
  the telemetry stream without sorting.
* Stream/log agreement — every ``tuning/degrade`` instant the recorder
  collects corresponds 1:1, in order, to a ``DegradationEvent`` in
  ``runtime.degradation_log`` (same time, pid, phase, kind, detail),
  and every applied fault shows up as a ``fault/...`` instant.
"""

import pytest

from repro.sim import Simulation, SimProcess, core2quad_amp
from repro.sim.cost_model import CostVector
from repro.sim.faults import (
    DvfsEvent,
    FaultPlan,
    HotplugEvent,
    MemoryPressureEvent,
)
from repro.sim.process import Segment, Trace
from repro.telemetry import TimelineAnalyzer, tracing
from repro.tuning.runtime import PhaseTuningRuntime


def _long_proc(machine, pid=1, cycles=2e10):
    vector = CostVector.zero(machine.core_types())
    vector.instrs = 1e9
    for name in vector.compute:
        vector.compute[name] = cycles
    trace = Trace((Segment("seg", None, 1.0, vector),))
    return SimProcess(
        pid, f"p{pid}", trace, machine.all_cores_mask, isolated_time=1.0
    )


_PLAN = FaultPlan(
    dvfs=(DvfsEvent(0.5, 1, 0.8),),
    hotplug=(
        HotplugEvent(1.0, 2, online=False),
        HotplugEvent(3.0, 2, online=True),
    ),
    mem_pressure=(
        MemoryPressureEvent(1.5, 3, 0.5),
        MemoryPressureEvent(2.5, 3, 0.0),
    ),
)


@pytest.fixture()
def faulted_run():
    machine = core2quad_amp()
    runtime = PhaseTuningRuntime(machine, 0.12, monitor_noise=0.0)
    with tracing() as rec:
        sim = Simulation(machine, runtime=runtime, faults=_PLAN)
        proc = _long_proc(machine)
        sim.add_process(proc, 0.0)
        sim.run(100.0)
    assert proc.finished
    return runtime, sim, rec


def test_degradation_log_is_time_ordered(faulted_run):
    runtime, _, _ = faulted_run
    times = [event.time for event in runtime.degradation_log]
    assert times, "plan produced no degradations"
    assert times == sorted(times)


def test_degrade_stream_matches_log_one_to_one(faulted_run):
    runtime, _, rec = faulted_run
    stream = [
        (ts, args)
        for ph, cat, name, run, ts, tid, value, args in rec.events
        if cat == "tuning" and name == "degrade"
    ]
    log = runtime.degradation_log
    assert len(stream) == len(log) > 0
    for (ts, args), event in zip(stream, log):
        assert ts == event.time
        assert args["pid"] == event.pid
        assert args["phase"] == event.phase_type
        assert args["kind"] == event.kind
        assert args["detail"] == event.detail
    assert rec.metrics.get("tuning.degradations") == len(log)


def test_machine_events_degrade_with_their_kind(faulted_run):
    runtime, _, _ = faulted_run
    kinds = [
        event.kind for event in runtime.degradation_log if event.pid is None
    ]
    assert kinds == ["dvfs", "hotplug", "mem-pressure", "mem-pressure", "hotplug"]


def test_fault_stream_matches_applied_events(faulted_run):
    runtime, sim, rec = faulted_run
    faults = [
        (ts, name, args)
        for ph, cat, name, run, ts, tid, value, args in rec.events
        if cat == "fault"
    ]
    assert [(ts, name) for ts, name, args in faults] == [
        (0.5, "dvfs"),
        (1.0, "hotplug"),
        (1.5, "mem-pressure"),
        (2.5, "mem-pressure"),
        (3.0, "hotplug"),
    ]
    assert [args["shrink"] for ts, name, args in faults
            if name == "mem-pressure"] == [0.5, 0.0]
    assert [args["restored"] for ts, name, args in faults
            if name == "mem-pressure"] == [False, True]
    assert sim.faults.fired["mem_pressure"] == 2


def test_analyzer_collects_fault_and_degradation_inventories(faulted_run):
    runtime, _, rec = faulted_run
    analyzer = TimelineAnalyzer.from_recorder(rec)
    (run, label, clock), *_ = analyzer.runs()
    timeline = analyzer.timeline(run)
    assert label.startswith("sim:") and clock == "sim"
    assert len(timeline.fault_events) == 5
    assert len(timeline.degradations) == len(runtime.degradation_log)
