"""Acceptance pin: analyzer switch counts agree EXACTLY with Table 1.

The analyzer accumulates a process's switch total in event order with
the same float operations the executor applies to
``ProcessStats.switches`` (+1.0 per migration instant, +value per
thrash counter), so a traced Table 1 run must reproduce every row's
switch count bit-for-bit — no tolerance.  And because the default
recorder is the :class:`NullRecorder`, tracing itself must not perturb
the simulation: traced and untraced rows are compared for exact
equality too.
"""

import pytest

from repro.experiments import table1
from repro.telemetry import TimelineAnalyzer, tracing


@pytest.fixture(scope="module")
def traced():
    untraced = table1.run(jobs=1)
    with tracing() as rec:
        result = table1.run(jobs=1)
    return untraced, result, TimelineAnalyzer.from_recorder(rec)


def _benchmark_timelines(analyzer):
    """Map benchmark name -> (timeline, pid) from sim-run start events."""
    out = {}
    for run, label, clock in analyzer.runs():
        if not label.startswith("sim:"):
            continue
        timeline = analyzer.timeline(run)
        for pid, name in timeline.names.items():
            out[name] = (timeline, pid)
    return out


def test_tracing_does_not_perturb_results(traced):
    untraced, result, _ = traced
    assert untraced == result


def test_every_benchmark_has_a_sim_run(traced):
    _, result, analyzer = traced
    timelines = _benchmark_timelines(analyzer)
    assert set(timelines) == {row.name for row in result.rows}


def test_switch_totals_match_table1_exactly(traced):
    _, result, analyzer = traced
    timelines = _benchmark_timelines(analyzer)
    for row in result.rows:
        timeline, pid = timelines[row.name]
        assert timeline.switches.get(pid, 0.0) == row.switches, row.name


def test_phase_attribution_is_complete(traced):
    """Per-phase switch/migration splits sum back to the totals."""
    _, result, analyzer = traced
    timelines = _benchmark_timelines(analyzer)
    for row in result.rows:
        timeline, pid = timelines[row.name]
        by_phase = timeline.phase_switches.get(pid, {})
        assert sum(by_phase.values()) == pytest.approx(
            timeline.switches.get(pid, 0.0)
        ), row.name
        counts = timeline.phase_migrations.get(pid, {})
        assert sum(counts.values()) == timeline.migrations.get(pid, 0), row.name


def test_end_stats_mirror_switches(traced):
    """The process-end payload carries the same switch total."""
    _, result, analyzer = traced
    timelines = _benchmark_timelines(analyzer)
    for row in result.rows:
        timeline, pid = timelines[row.name]
        stats = timeline.end_stats.get(pid)
        assert stats is not None, row.name
        assert stats["switches"] == row.switches, row.name


def test_stall_attribution_uses_end_stats(traced):
    _, result, analyzer = traced
    timelines = _benchmark_timelines(analyzer)
    # Pick a benchmark with switches so migration_cycles is nonzero.
    row = max(result.rows, key=lambda r: r.switches)
    timeline, pid = timelines[row.name]
    attribution = analyzer.stall_attribution(timeline.run, pid)
    assert attribution["total_cycles"] > 0
    assert attribution["migration_cycles"] > 0
    assert 0.0 <= attribution["overhead_fraction"] < 1.0
