"""Harness telemetry: task spans, and worker->parent event shipping.

Pool workers run in their own processes, so each installs a fresh
recorder, traces whatever it executes (simulations included), and ships
the result back pickled next to the task's return value — mirroring how
the pipeline cache ships entries.  The parent absorbs the blobs in task
order, so run ids (and therefore trace track groups) are deterministic.
"""

from repro.experiments.harness import run_tasks
from repro.sim import Simulation, SimProcess, core2quad_amp
from repro.sim.cost_model import CostVector
from repro.sim.process import Segment, Trace
from repro.telemetry import tracing


def _double(task):
    return task * 2


def _simulate(cycles):
    machine = core2quad_amp()
    vector = CostVector.zero(machine.core_types())
    vector.instrs = 1e3
    for name in vector.compute:
        vector.compute[name] = cycles
    trace = Trace((Segment("seg", None, 1.0, vector),))
    proc = SimProcess(1, "w", trace, machine.all_cores_mask, isolated_time=1.0)
    sim = Simulation(machine, runtime=None)
    sim.add_process(proc, 0.0)
    sim.run(100.0)
    return proc.completion


def test_serial_tasks_record_spans_and_metrics():
    with tracing() as rec:
        results = run_tasks(_double, [1, 2, 3], jobs=1, labels=["a", "b", "c"])
    assert results == [2, 4, 6]
    assert rec.metrics["harness.tasks"] == 3.0
    assert rec.metrics["harness.task_seconds"] >= 0.0
    spans = [e for e in rec.events if e[0] == "X" and e[1] == "task"]
    assert [e[2] for e in spans] == ["a", "b", "c"]
    wall_runs = [label for label, clock in rec.runs.values() if clock == "wall"]
    assert wall_runs == ["harness"]


def test_pool_workers_ship_events_back():
    with tracing() as rec:
        results = run_tasks(_double, [1, 2, 3], jobs=2)
    assert results == [2, 4, 6]
    # Every task traced in some worker, metrics summed across workers.
    assert rec.metrics["harness.tasks"] == 3.0
    labels = [label for label, clock in rec.runs.values()]
    assert any(label.startswith("worker:") for label in labels)
    spans = [e for e in rec.events if e[0] == "X" and e[1] == "task"]
    assert len(spans) == 3


def test_pool_ships_simulation_runs():
    with tracing() as rec:
        results = run_tasks(_simulate, [1e6, 2e6], jobs=2)
    assert all(t > 0 for t in results)
    sim_labels = [
        label for label, clock in rec.runs.values() if label.startswith("sim:")
    ]
    assert len(sim_labels) == 2
    # The simulations' exec events came along with the runs.
    starts = [e for e in rec.events if e[1] == "exec" and e[2] == "start"]
    assert len(starts) == 2


def test_untraced_run_tasks_untouched():
    results = run_tasks(_double, [1, 2], jobs=2)
    assert results == [2, 4]
