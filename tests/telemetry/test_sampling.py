"""Deterministic sampling of hot telemetry categories."""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.telemetry.recorder import TraceRecorder


def _fill(recorder, n=400):
    for i in range(n):
        recorder.span("quantum", "turn", ts=i * 0.01, dur=0.01, tid=i % 4)
        recorder.instant("exec", "migrate", ts=i * 0.01, tid=1000 + i % 8)


def test_sampled_category_keeps_deterministic_subset():
    a = TraceRecorder(
        categories={"quantum", "exec"}, sample={"quantum": 0.25}, sample_seed=7
    )
    b = TraceRecorder(
        categories={"quantum", "exec"}, sample={"quantum": 0.25}, sample_seed=7
    )
    _fill(a)
    _fill(b)
    assert a.events == b.events
    kept = [ev for ev in a.events if ev[1] == "quantum"]
    # Roughly a quarter survive; the bound is loose, the determinism is
    # the contract.
    assert 0 < len(kept) < 400
    assert len(kept) == pytest.approx(100, abs=40)
    # Unsampled categories are untouched.
    assert sum(1 for ev in a.events if ev[1] == "exec") == 400


def test_different_seed_keeps_different_subset():
    a = TraceRecorder(categories={"quantum"}, sample={"quantum": 0.5}, sample_seed=1)
    b = TraceRecorder(categories={"quantum"}, sample={"quantum": 0.5}, sample_seed=2)
    _fill(a)
    _fill(b)
    assert a.events != b.events


def test_rate_one_is_identity():
    sampled = TraceRecorder(
        categories={"quantum", "exec"}, sample={"quantum": 1.0}
    )
    plain = TraceRecorder(categories={"quantum", "exec"})
    _fill(sampled)
    _fill(plain)
    assert list(sampled.events) == list(plain.events)


def test_raw_appends_are_sampled_too():
    """Hot sites append raw tuples, bypassing instant()/span(); the
    keep decision must still apply."""
    recorder = TraceRecorder(
        categories={"quantum"}, sample={"quantum": 0.2}, sample_seed=3
    )
    for i in range(300):
        recorder.events.append(
            ("X", "quantum", "turn", 0, i * 0.01, i % 4, 0.01, None)
        )
    kept = len(recorder.events)
    assert 0 < kept < 300


def test_absorb_blob_redecides_identically():
    """Re-appending an event decides the same way: absorbing a worker
    blob into an equally-configured parent keeps it byte-identical."""
    worker = TraceRecorder(
        categories={"quantum"}, sample={"quantum": 0.3}, sample_seed=9
    )
    _fill(worker)
    parent = TraceRecorder(
        categories={"quantum"}, sample={"quantum": 0.3}, sample_seed=9
    )
    parent.absorb_blob(worker.export_blob())
    # Same run ids (parent had none), so events land identical.
    assert list(parent.events) == list(worker.events)


def test_bad_rate_rejected():
    with pytest.raises(TelemetryError):
        TraceRecorder(sample={"quantum": 0.0})
    with pytest.raises(TelemetryError):
        TraceRecorder(sample={"quantum": 1.5})
