"""Unit tests for the Recorder protocol, categories, and context."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    ALL_CATEGORIES,
    DEFAULT_CATEGORIES,
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    current_recorder,
    parse_categories,
    set_recorder,
    tracing,
)


# -- categories -----------------------------------------------------------------


def test_default_categories_exclude_high_volume():
    assert "quantum" not in DEFAULT_CATEGORIES
    assert "segment" not in DEFAULT_CATEGORIES
    assert DEFAULT_CATEGORIES < ALL_CATEGORIES


@pytest.mark.parametrize("text,expected", [
    ("", DEFAULT_CATEGORIES),
    ("default", DEFAULT_CATEGORIES),
    ("all", ALL_CATEGORIES),
    ("exec,quantum", frozenset({"exec", "quantum"})),
    (" Exec , SCHED ", frozenset({"exec", "sched"})),
])
def test_parse_categories(text, expected):
    assert parse_categories(text) == expected


def test_parse_categories_rejects_unknown():
    with pytest.raises(TelemetryError, match="unknown trace categories"):
        parse_categories("exec,bogus")


# -- NullRecorder ---------------------------------------------------------------


def test_null_recorder_is_disabled_and_inert():
    rec = NullRecorder()
    assert rec.enabled is False
    assert not rec.wants("exec")
    assert rec.begin_run("x") == 0
    # All emission methods are no-ops (must not raise, store nothing).
    rec.instant("exec", "migrate", 1.0)
    rec.span("task", "t", 0.0, 1.0)
    rec.counter("exec", "idle", 1.0, 2.0)
    rec.meta("process_name", 0, {})
    rec.incr("anything")


def test_default_process_recorder_is_null(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
    assert current_recorder().enabled in (False, True)  # whatever is installed
    previous = set_recorder(NULL_RECORDER)
    try:
        assert current_recorder() is NULL_RECORDER
    finally:
        set_recorder(previous)


# -- TraceRecorder --------------------------------------------------------------


def test_trace_recorder_records_typed_events():
    rec = TraceRecorder()
    assert rec.enabled is True
    assert rec.wants("exec") and not rec.wants("quantum")
    run = rec.begin_run("sim:test")
    rec.instant("exec", "migrate", 1.5, tid=1001, args={"pid": 1})
    rec.span("task", "t", 0.0, 2.0, tid=0)
    rec.counter("exec", "idle", 3.0, 7.5, tid=2)
    assert rec.events == [
        ("I", "exec", "migrate", run, 1.5, 1001, None, {"pid": 1}),
        ("X", "task", "t", run, 0.0, 0, 2.0, None),
        ("C", "exec", "idle", run, 3.0, 2, 7.5, None),
    ]
    assert len(rec) == 3


def test_runs_register_label_and_clock():
    rec = TraceRecorder()
    a = rec.begin_run("sim:amp")
    b = rec.begin_run("harness", clock="wall")
    assert (a, b) == (0, 1)
    assert rec.runs == {0: ("sim:amp", "sim"), 1: ("harness", "wall")}
    rec.instant("exec", "e", 0.0)  # defaults to the current run
    assert rec.events[-1][3] == b
    rec.instant("exec", "e", 0.0, run=a)  # explicit run override
    assert rec.events[-1][3] == a


def test_incr_accumulates_metrics():
    rec = TraceRecorder()
    rec.incr("cache.hit")
    rec.incr("cache.hit")
    rec.incr("harness.task_seconds", 2.5)
    assert rec.metrics == {"cache.hit": 2.0, "harness.task_seconds": 2.5}


def test_custom_categories():
    rec = TraceRecorder(categories=frozenset({"quantum"}))
    assert rec.wants("quantum") and not rec.wants("exec")


# -- blob shipping --------------------------------------------------------------


def test_blob_roundtrip_rebases_runs_and_sums_metrics():
    worker = TraceRecorder()
    wrun = worker.begin_run("worker:1", clock="wall")
    worker.instant("exec", "migrate", 1.0, tid=1001, args={"pid": 1})
    worker.incr("harness.tasks")

    parent = TraceRecorder()
    parent.begin_run("sim:amp")
    parent.instant("exec", "migrate", 0.5, tid=1002)
    parent.incr("harness.tasks")

    absorbed = parent.absorb_blob(worker.export_blob())
    assert absorbed == 1
    # Worker run 0 re-based past the parent's run 0.
    assert parent.runs == {0: ("sim:amp", "sim"), 1: ("worker:1", "wall")}
    assert [e[3] for e in parent.events] == [0, wrun + 1]
    assert parent.metrics == {"harness.tasks": 2.0}
    # A later local run gets an id past the absorbed ones.
    assert parent.begin_run("later") == 2


def test_absorb_into_empty_recorder_keeps_ids():
    worker = TraceRecorder()
    worker.begin_run("worker:9")
    worker.instant("exec", "e", 0.0)
    parent = TraceRecorder()
    parent.absorb_blob(worker.export_blob())
    assert parent.runs == {0: ("worker:9", "sim")}
    assert parent.events[0][3] == 0


def test_clear_resets_everything():
    rec = TraceRecorder()
    rec.begin_run("x")
    rec.instant("exec", "e", 0.0)
    rec.incr("m")
    rec.clear()
    assert (rec.events, rec.metrics, rec.runs, len(rec)) == ([], {}, {}, 0)
    assert rec.begin_run("y") == 0


# -- context management ---------------------------------------------------------


def test_tracing_context_installs_and_restores():
    before = current_recorder()
    with tracing() as rec:
        assert current_recorder() is rec
        assert rec.enabled
    assert current_recorder() is before


def test_tracing_restores_on_exception():
    before = current_recorder()
    with pytest.raises(RuntimeError):
        with tracing():
            raise RuntimeError("boom")
    assert current_recorder() is before
