"""Streaming telemetry tests: JSONL event streams and tolerant loads.

A :class:`TraceRecorder` built with ``stream_to=`` appends every event
to a JSONL file as it is recorded, so a SIGKILLed run's trace survives
up to the last flush with at worst one torn final line.  These tests
pin the roundtrip (streamed file == in-memory ``chrome_trace``), the
torn-tail tolerance contract of :func:`load_chrome_trace`, and the
shipping interplay (``absorb_blob`` streams rebased run metadata).
"""

import pickle

import pytest

from repro.errors import TelemetryError
from repro.telemetry.analyzer import TimelineAnalyzer
from repro.telemetry.export import chrome_trace, load_chrome_trace
from repro.telemetry.recorder import TraceRecorder


def _record_sample(recorder):
    run = recorder.begin_run("sample", clock="sim")
    recorder.instant("exec", "start", 0.0, tid=1001, args={"pid": 1, "name": "x"})
    recorder.span("quantum", "q", 0.5, 2.0, tid=3)
    recorder.counter("exec", "idle", 4.0, 1.25, tid=2)
    recorder.instant("exec", "end", 5.0, tid=1001, args={"pid": 1, "name": "x"})
    return run


def _streamed(tmp_path, **kwargs):
    path = tmp_path / "trace.jsonl"
    recorder = TraceRecorder(
        categories={"exec", "quantum"}, stream_to=path, **kwargs
    )
    return recorder, path


# -- roundtrip ------------------------------------------------------------------


def test_stream_matches_in_memory_export(tmp_path):
    recorder, path = _streamed(tmp_path)
    _record_sample(recorder)
    recorder.close_stream()
    runs, events = load_chrome_trace(path)
    expected_runs, expected_events = load_chrome_trace(chrome_trace(recorder))
    assert runs == expected_runs
    assert events == expected_events


def test_streamed_events_also_collect_in_memory(tmp_path):
    recorder, _ = _streamed(tmp_path)
    _record_sample(recorder)
    assert len(recorder.events) == 4
    recorder.close_stream()


def test_analyzer_reads_streamed_trace(tmp_path):
    recorder, path = _streamed(tmp_path)
    run = _record_sample(recorder)
    recorder.close_stream()
    analyzer = TimelineAnalyzer.from_file(path)
    timeline = analyzer.timeline(run)
    assert timeline.label == "sample"
    assert timeline.names == {1: "x"}
    assert timeline.quantum_busy == {3: pytest.approx(2.0)}


def test_stream_survives_unserialisable_args(tmp_path):
    """Args may carry arbitrary objects; streaming must never be able
    to kill the run being traced (default=repr)."""
    recorder, path = _streamed(tmp_path)
    recorder.begin_run("odd")
    recorder.instant("exec", "weird", 0.0, args={"obj": object()})
    recorder.close_stream()
    runs, events = load_chrome_trace(path)
    assert len(events) == 1
    assert "object object" in events[0][7]["obj"]


# -- torn-tail tolerance --------------------------------------------------------


def _torn(path):
    text = path.read_text().rstrip("\n")
    lines = text.split("\n")
    lines[-1] = lines[-1][: len(lines[-1]) // 2]
    path.write_text("\n".join(lines))
    return len(lines)


def test_torn_tail_rejected_by_default(tmp_path):
    recorder, path = _streamed(tmp_path)
    _record_sample(recorder)
    recorder.close_stream()
    _torn(path)
    with pytest.raises(TelemetryError, match="tolerant_tail=True"):
        load_chrome_trace(path)


def test_torn_tail_dropped_when_tolerant(tmp_path):
    recorder, path = _streamed(tmp_path)
    _record_sample(recorder)
    recorder.close_stream()
    intact, _ = load_chrome_trace(path)
    n_lines = _torn(path)
    runs, events = load_chrome_trace(path, tolerant_tail=True)
    assert runs == intact and len(events) == n_lines - 2  # meta + torn line


def test_corrupt_middle_always_raises(tmp_path):
    recorder, path = _streamed(tmp_path)
    _record_sample(recorder)
    recorder.close_stream()
    lines = path.read_text().rstrip("\n").split("\n")
    lines[2] = lines[2][:5]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(TelemetryError, match="line 3"):
        load_chrome_trace(path, tolerant_tail=True)


def test_flush_cadence_limits_loss(tmp_path):
    """Events past the last flush can be lost on SIGKILL; events before
    it cannot.  With flush_every=2, after 5 events at least 4 lines
    (meta + 4 events, minus the unflushed tail) are on disk."""
    recorder, path = _streamed(tmp_path, stream_flush_every=2)
    recorder.begin_run("r")  # run metas flush immediately
    for i in range(5):
        recorder.instant("exec", f"e{i}", float(i))
    on_disk = path.read_text()
    assert sum(1 for line in on_disk.splitlines() if line.strip()) >= 5
    recorder.close_stream()


# -- shipping interplay ---------------------------------------------------------


def test_absorb_blob_streams_rebased_run_metas(tmp_path):
    worker = TraceRecorder(categories={"exec"})
    worker.begin_run("worker-run")
    worker.instant("exec", "w", 1.0, tid=7)
    blob = worker.export_blob()

    parent, path = _streamed(tmp_path)
    parent.begin_run("parent-run")
    parent.absorb_blob(blob)
    parent.close_stream()
    runs, events = load_chrome_trace(path)
    assert runs == {0: ("parent-run", "sim"), 1: ("worker-run", "sim")}
    # The worker's event was rebased onto run 1 in the stream too.
    assert [(ev[2], ev[3]) for ev in events] == [("w", 1)]


def test_export_blob_pickles_plain_list(tmp_path):
    """The streaming events subclass references an open file; shipping
    must always send a plain list."""
    recorder, _ = _streamed(tmp_path)
    _record_sample(recorder)
    blob = recorder.export_blob()
    recorder.close_stream()
    _, _, events, _ = pickle.loads(blob)
    assert type(events) is list
    assert len(events) == 4
