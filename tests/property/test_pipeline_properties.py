"""Property-based tests across the analysis/instrumentation pipeline."""

from hypothesis import given, settings, strategies as st

from repro.analysis import StaticBlockTyper, annotate_program
from repro.analysis.transitions import (
    basic_block_transitions,
    interval_transitions,
    loop_transitions,
)
from repro.instrument import LoopStrategy, BBStrategy, instrument
from repro.program import validate_program
from repro.workloads.generator import random_program

seeds = st.integers(min_value=0, max_value=5000)


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_transition_sections_respect_min_size(seed):
    program = random_program(seed=seed)
    typing = StaticBlockTyper().type_blocks(program)
    aprog = annotate_program(program, typing)
    for min_size in (10, 30):
        for points in (
            basic_block_transitions(aprog, min_size),
            interval_transitions(aprog, min_size),
            loop_transitions(aprog, min_size),
        ):
            assert all(p.size_instrs >= min_size for p in points)


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_trigger_edges_enter_from_outside(seed):
    program = random_program(seed=seed)
    typing = StaticBlockTyper().type_blocks(program)
    aprog = annotate_program(program, typing)
    for points in (
        basic_block_transitions(aprog, 10),
        interval_transitions(aprog, 20),
        loop_transitions(aprog, 20),
    ):
        for p in points:
            for src, dst in p.trigger_edges:
                assert src not in p.section_blocks
                assert dst == p.entry_block


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_bigger_min_size_never_more_marks(seed):
    program = random_program(seed=seed)
    typing = StaticBlockTyper().type_blocks(program)
    aprog = annotate_program(program, typing)
    small = len(loop_transitions(aprog, 10))
    big = len(loop_transitions(aprog, 60))
    assert big <= small


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_materialized_rewrites_validate(seed):
    program = random_program(seed=seed)
    for strategy in (LoopStrategy(15), BBStrategy(10, 0)):
        inst = instrument(program, strategy)
        tuned = inst.materialize()
        validate_program(tuned)  # Must not raise.
        # Physical growth equals accounted code bytes.
        from repro.instrument.phase_mark import MARK_DATA_BYTES

        growth = tuned.size_bytes - program.size_bytes
        accounted = inst.added_bytes - MARK_DATA_BYTES * len(inst.marks)
        assert growth == accounted


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_mark_bytes_bounded(seed):
    program = random_program(seed=seed)
    inst = instrument(program, LoopStrategy(15))
    for mark in inst.marks:
        assert mark.total_bytes <= 78 + 5 * max(
            0, mark.fallthrough_edges - 1
        )
