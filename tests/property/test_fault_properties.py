"""Property tests for the fault-injection layer's safety contract.

Two invariants, whatever the plan:

* **No crash, no deadlock** — any seeded :class:`FaultPlan` (random
  rates, hotplug storms, DVFS steps) lets a hardened tuned run finish
  the interval and commit forward progress.  The explore loop may
  degrade to FREE, never hang.
* **Null plans are no-ops** — a zero-fault plan leaves fig6/table1
  output byte-identical to a fault-free run (same floats, not
  approximately equal).
"""

from hypothesis import given, settings, strategies as st

from repro.experiments import ExperimentConfig, fig6, table1
from repro.experiments.extras import HARDENED_RUNTIME_KWARGS
from repro.experiments.runner import make_workload, run_technique
from repro.sim.faults import DvfsEvent, FaultPlan, HotplugEvent
from repro.tuning.runtime import PhaseTuningRuntime

QUICK = ExperimentConfig(slots=4, interval=30.0, seed=101)
MACHINE = QUICK.resolved_machine()
WORKLOAD = make_workload(QUICK)


def _hardened_runtime():
    return PhaseTuningRuntime(
        MACHINE,
        QUICK.ipc_threshold,
        tie_policy=QUICK.tie_policy,
        **HARDENED_RUNTIME_KWARGS,
    )


def _tuned_outcome(plan):
    runtime = _hardened_runtime()
    outcome = run_technique(
        QUICK, "Loop[45]", workload=WORKLOAD, runtime=runtime, faults=plan
    )
    return outcome, runtime


@settings(max_examples=15, deadline=None)
@given(
    rate=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_any_scaled_plan_never_crashes(rate, seed):
    plan = FaultPlan.scaled(rate, MACHINE, QUICK.interval, seed=seed)
    outcome, runtime = _tuned_outcome(plan)
    assert outcome.instructions > 0  # forward progress, not a wedge
    # Every explore either converged, is mid-flight, or degraded — the
    # ladder never leaves a process stuck waiting forever.
    for proc in outcome.result.completed:
        for state in proc.tuner_state.values():
            assert state.decided is not None or state.open_failures <= (
                HARDENED_RUNTIME_KWARGS["max_monitor_retries"]
            )


@settings(max_examples=10, deadline=None)
@given(
    data=st.data(),
    n_hotplug=st.integers(min_value=0, max_value=6),
    n_dvfs=st.integers(min_value=0, max_value=6),
)
def test_hotplug_dvfs_storms_never_crash(data, n_hotplug, n_dvfs):
    """Hand-rolled event storms (not just ``scaled``'s shapes) are safe,
    including plans that try to take every core down at once."""
    times = st.floats(min_value=0.0, max_value=QUICK.interval)
    cores = st.integers(min_value=0, max_value=len(MACHINE) - 1)
    hotplug = tuple(
        HotplugEvent(
            data.draw(times), data.draw(cores), online=data.draw(st.booleans())
        )
        for _ in range(n_hotplug)
    )
    dvfs = tuple(
        DvfsEvent(
            data.draw(times),
            data.draw(cores),
            data.draw(st.floats(min_value=0.1, max_value=2.0)),
        )
        for _ in range(n_dvfs)
    )
    plan = FaultPlan(hotplug=hotplug, dvfs=dvfs)
    outcome, runtime = _tuned_outcome(plan)
    assert outcome.instructions > 0
    assert runtime.machine_epoch == len(hotplug) + len(dvfs) - (
        runtime.faults.fired["skipped_events"] if runtime.faults else 0
    )


# -- zero-fault byte-identity regression ------------------------------------


def test_zero_fault_fig6_byte_identical():
    deltas = (0.02, 0.12)
    plain = fig6.run(QUICK, deltas=deltas, jobs=1)
    nulled = fig6.run(QUICK, deltas=deltas, jobs=1, faults=FaultPlan())
    assert plain.improvements == nulled.improvements  # exact equality
    assert plain.deltas == nulled.deltas


def test_zero_fault_table1_byte_identical():
    benchmarks = ("164.gzip", "473.astar")
    plain = table1.run(benchmarks=benchmarks, jobs=1)
    nulled = table1.run(benchmarks=benchmarks, jobs=1, faults=FaultPlan())
    for s, p in zip(plain.rows, nulled.rows):
        assert s.name == p.name
        assert s.switches == p.switches
        assert s.runtime_seconds == p.runtime_seconds  # exact equality
        assert s.total_cycles == p.total_cycles
        assert s.marks == p.marks
