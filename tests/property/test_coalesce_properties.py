"""Property tests pinning the coalesced executor to the reference paths.

One invariant, swept over random seeds, nonzero fault plans, and
tracing on/off: the stepped (``batched=False``), per-quantum batched
(``coalesce=False``), and coalesced (default) executors produce
*exactly* equal results — completion floats, switch/migration counts,
telemetry event streams, throughput buckets, idle accounting — and the
equality survives a kill/resume from a checkpoint cut mid-window.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import SimProcess, Simulation, TraceGenerator, core2quad_amp
from repro.sim.checkpoint import CheckpointManager
from repro.sim.faults import FaultPlan
from repro.telemetry.context import set_recorder
from repro.telemetry.recorder import TraceRecorder
from tests.conftest import make_phased_program
from tests.sim.test_batched_executor import _summary

MACHINE = core2quad_amp()
INTERVAL = 40.0

_PROGRAM, _SPEC = make_phased_program(
    compute_iters=2_000_000, memory_iters=2_000_000, outer=20
)
_TRACE = TraceGenerator(MACHINE).generate(_PROGRAM, _SPEC)


def _build(plan, *, batched=True, coalesce=None):
    sim = Simulation(MACHINE, faults=plan, batched=batched, coalesce=coalesce)
    for pid in range(5):
        sim.add_process(
            SimProcess(
                pid,
                f"p{pid}",
                _TRACE,
                MACHINE.all_cores_mask,
                isolated_time=1.0,
            ),
            0.0,
        )
    return sim


def _run(plan, *, batched=True, coalesce=None, traced=False):
    """One run; returns (summary, telemetry events sans run id)."""
    recorder = None
    if traced:
        recorder = TraceRecorder(categories={"exec", "sched", "quantum"})
        previous = set_recorder(recorder)
    try:
        summary = _summary(
            _build(plan, batched=batched, coalesce=coalesce).run(INTERVAL)
        )
    finally:
        if traced:
            set_recorder(previous)
    events = (
        [e[:3] + e[4:] for e in recorder.events] if traced else None
    )
    return summary, events


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    rate=st.floats(min_value=0.1, max_value=1.0),
    traced=st.booleans(),
)
def test_three_paths_exactly_equal(seed, rate, traced):
    plan = FaultPlan.scaled(rate, MACHINE, INTERVAL, seed=seed)
    coalesced = _run(plan, coalesce=True, traced=traced)
    batched = _run(plan, coalesce=False, traced=traced)
    stepped = _run(plan, batched=False, coalesce=False, traced=traced)
    assert coalesced == batched == stepped


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    cut=st.floats(min_value=3.0, max_value=12.0),
)
def test_kill_resume_mid_window_equals_stepped(seed, cut, tmp_path_factory):
    """A coalesced run checkpointed on the grid, killed at *cut*, and
    resumed from its snapshot matches the uninterrupted stepped run."""
    plan = FaultPlan.scaled(0.5, MACHINE, INTERVAL, seed=seed)
    reference, _ = _run(plan, batched=False, coalesce=False)

    ckpt_dir = tmp_path_factory.mktemp("ck")
    partial = CheckpointManager(ckpt_dir, interval=2.0)
    _build(plan, coalesce=True).run(cut, checkpoint=partial)
    assert partial.saves > 0

    state = CheckpointManager(ckpt_dir, interval=2.0).latest_state()
    resumed = Simulation.from_snapshot(state)
    assert resumed.coalesce
    assert _summary(resumed.run(INTERVAL)) == reference
