"""Property-based tests over randomly generated programs.

The seeded program generator provides arbitrary (but always-valid)
control flow; hypothesis drives the seeds and structure so structural
invariants of CFGs, dominators, intervals and loops are checked over a
wide space.
"""

from hypothesis import given, settings, strategies as st

from repro.program import (
    build_cfg,
    compute_dominators,
    dominates,
    find_loops,
    partition_intervals,
)
from repro.workloads.generator import random_program

seeds = st.integers(min_value=0, max_value=10_000)
proc_counts = st.integers(min_value=0, max_value=4)


@settings(max_examples=30, deadline=None)
@given(seed=seeds, procs=proc_counts)
def test_blocks_partition_code(seed, procs):
    program = random_program(seed=seed, procedures=procs)
    for proc in program:
        cfg = build_cfg(proc)
        covered = sorted(
            i for b in cfg.blocks for i in range(b.start, b.end)
        )
        assert covered == list(range(len(proc.code)))


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_edges_are_consistent(seed):
    program = random_program(seed=seed)
    for proc in program:
        cfg = build_cfg(proc)
        for edge in cfg.edges:
            assert edge.dst in cfg.succs(edge.src)
            assert edge.src in cfg.preds(edge.dst)


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_back_edges_satisfy_dominance(seed):
    """An edge is tagged backward iff its target dominates its source."""
    program = random_program(seed=seed)
    for proc in program:
        cfg = build_cfg(proc)
        idom = compute_dominators(cfg)
        reachable = set(cfg.reverse_postorder())
        for edge in cfg.edges:
            if edge.src not in reachable:
                continue
            is_back = edge.kind == "b"
            assert is_back == dominates(idom, edge.dst, edge.src)


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_entry_dominates_reachable(seed):
    program = random_program(seed=seed)
    for proc in program:
        cfg = build_cfg(proc)
        idom = compute_dominators(cfg)
        for block in cfg.reverse_postorder():
            assert dominates(idom, 0, block)


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_intervals_partition_reachable_blocks(seed):
    program = random_program(seed=seed)
    for proc in program:
        cfg = build_cfg(proc)
        intervals = partition_intervals(cfg)
        members = [n for i in intervals for n in i.nodes]
        assert sorted(members) == sorted(set(cfg.reverse_postorder()))
        assert len(members) == len(set(members))  # Disjoint.


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_interval_single_entry(seed):
    program = random_program(seed=seed)
    for proc in program:
        cfg = build_cfg(proc)
        for interval in partition_intervals(cfg):
            body = set(interval.nodes)
            for node in interval.nodes:
                if node != interval.header:
                    assert all(p in body for p in cfg.preds(node))


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_loops_well_nested(seed):
    """Any two loops are disjoint or one contains the other."""
    program = random_program(seed=seed)
    for proc in program:
        cfg = build_cfg(proc)
        loops = find_loops(cfg)
        for a in loops:
            assert a.header in a.body
            for b in loops:
                if a is b:
                    continue
                assert (
                    not (a.body & b.body)
                    or a.body <= b.body
                    or b.body <= a.body
                )


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_loop_nesting_links_consistent(seed):
    program = random_program(seed=seed)
    for proc in program:
        loops = find_loops(build_cfg(proc))
        for loop in loops:
            if loop.parent is not None:
                assert loop in loop.parent.children
                assert loop.body <= loop.parent.body
                assert loop.depth == loop.parent.depth + 1
            for child in loop.children:
                assert child.parent is loop
