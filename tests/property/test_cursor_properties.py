"""Property-based tests for the trace cursor and executor accounting."""

from hypothesis import given, settings, strategies as st

from repro.sim import Simulation, SimProcess, core2quad_amp
from repro.sim.cost_model import CostVector
from repro.sim.process import Repeat, Segment, Trace, TraceCursor

MACHINE = core2quad_amp()


def _segment(uid, iters, cycles=100.0, instrs=50.0):
    vector = CostVector.zero(MACHINE.core_types())
    vector.instrs = instrs
    for name in vector.compute:
        vector.compute[name] = cycles
    return Segment(uid, None, float(iters), vector)


# Recursive trace structures: segments at the leaves, repeats inside.
trace_nodes = st.recursive(
    st.builds(
        _segment,
        uid=st.just("s"),
        iters=st.integers(min_value=0, max_value=20),
    ),
    lambda children: st.builds(
        Repeat,
        children=st.lists(children, min_size=0, max_size=3).map(tuple),
        count=st.integers(min_value=0, max_value=4),
    ),
    max_leaves=10,
)
traces = st.lists(trace_nodes, min_size=0, max_size=5).map(
    lambda nodes: Trace(tuple(nodes))
)


@settings(max_examples=60, deadline=None)
@given(trace=traces, chunk=st.floats(min_value=0.5, max_value=50.0))
def test_cursor_consumes_exact_totals(trace, chunk):
    """Walking any trace in arbitrary chunks consumes exactly the
    structure's total iterations."""
    cursor = TraceCursor(trace)
    consumed = 0.0
    steps = 0
    while not cursor.finished:
        take = min(chunk, cursor.remaining_iterations)
        if take <= 0:
            take = cursor.remaining_iterations
        cursor.consume(take)
        consumed += take
        steps += 1
        assert steps < 10_000  # Progress guarantee.
    expected = trace.total_instrs() / 50.0  # 50 instrs per iteration.
    assert abs(consumed - expected) < 1e-6


@settings(max_examples=30, deadline=None)
@given(trace=traces)
def test_executor_commits_exact_instructions(trace):
    """The simulator retires exactly the trace's instruction total."""
    if trace.total_instrs() == 0:
        return
    sim = Simulation(MACHINE)
    proc = SimProcess(
        1, "p", trace, MACHINE.all_cores_mask, isolated_time=1.0
    )
    sim.add_process(proc, 0.0)
    result = sim.run(1e6)
    assert proc.finished
    assert abs(proc.stats.instructions - trace.total_instrs()) < 1e-3


@settings(max_examples=40, deadline=None)
@given(trace=traces)
def test_cursor_never_yields_zero_iteration_segment(trace):
    cursor = TraceCursor(trace)
    while not cursor.finished:
        assert cursor.current.iterations > 0
        cursor.consume(cursor.remaining_iterations)
