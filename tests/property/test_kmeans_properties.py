"""Property-based tests for k-means."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.kmeans import kmeans

points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    min_size=2,
    max_size=60,
)


@settings(max_examples=40, deadline=None)
@given(points=points_strategy, seed=st.integers(0, 1000))
def test_labels_in_range_and_clusters_nonempty(points, seed):
    k = min(2, len(points))
    result = kmeans(points, k, seed=seed)
    assert len(result.labels) == len(points)
    assert set(result.labels) == set(range(k))


@settings(max_examples=40, deadline=None)
@given(points=points_strategy, seed=st.integers(0, 1000))
def test_each_point_assigned_to_nearest_centroid(points, seed):
    k = min(3, len(points))
    result = kmeans(points, k, seed=seed)
    data = np.asarray(points, dtype=float)
    for i, label in enumerate(result.labels):
        own = np.sum((data[i] - result.centroids[label]) ** 2)
        others = [
            np.sum((data[i] - c) ** 2) for c in result.centroids
        ]
        # Nearest up to the empty-cluster re-seeding exception: the
        # point's own distance is never worse than the farthest option.
        assert own <= max(others) + 1e-9


@settings(max_examples=40, deadline=None)
@given(points=points_strategy, seed=st.integers(0, 1000))
def test_inertia_nonnegative_and_finite(points, seed):
    k = min(2, len(points))
    result = kmeans(points, k, seed=seed)
    assert result.inertia >= 0.0
    assert np.isfinite(result.inertia)


@settings(max_examples=20, deadline=None)
@given(points=points_strategy, seed=st.integers(0, 1000))
def test_determinism(points, seed):
    k = min(2, len(points))
    a = kmeans(points, k, seed=seed)
    b = kmeans(points, k, seed=seed)
    assert np.array_equal(a.labels, b.labels)
