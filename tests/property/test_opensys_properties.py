"""Property-based tests for the open-system engine.

The load-bearing invariant: under ANY interleaving of arrivals,
cancellations, and machine breakdowns, the job ledger is conserved —
``arrived == completed + cancelled + in_flight`` — and the run is a
pure function of its plan (byte-identical metrics on replay).
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.sim import core2quad_amp
from repro.sim.opensys import OpenSystemPlan, OpenSystemRun
from repro.workloads.workload import Workload, WorkloadRun

CLASSES = ("164.gzip", "429.mcf")

plans = st.builds(
    OpenSystemPlan,
    seed=st.integers(min_value=0, max_value=2**16),
    rate=st.floats(min_value=0.05, max_value=1.5),
    horizon=st.floats(min_value=5.0, max_value=45.0),
    process=st.sampled_from(("poisson", "uniform")),
    classes=st.just(CLASSES),
    cancel_fraction=st.floats(min_value=0.0, max_value=1.0),
    breakdowns=st.integers(min_value=0, max_value=3),
)


@settings(max_examples=15, deadline=None)
@given(plan=plans)
def test_ledger_conserved_under_any_interleaving(plan):
    machine = core2quad_amp()
    result = OpenSystemRun(plan, machine).run()
    assert result.arrived == (
        result.completed + result.cancelled + result.in_flight
    )
    assert result.in_flight >= 0
    # Every completion contributed exactly one sojourn and wait sample.
    assert len(result.sojourn) == result.completed
    assert len(result.wait) == result.completed
    # The depth series saw one delta per arrival and per retirement.
    assert len(result.depth) == (
        result.arrived + result.completed + result.cancelled
    )
    # The cancellation schedule fully accounts for cancels: every
    # scheduled cancel either removed its job or was a miss.
    scheduled = len(plan.cancellations(plan.arrivals()))
    assert result.cancelled + result.cancel_misses <= scheduled


@settings(max_examples=6, deadline=None)
@given(plan=plans)
def test_replay_is_byte_identical(plan):
    machine = core2quad_amp()
    first = OpenSystemRun(plan, machine).run()
    second = OpenSystemRun(plan, machine).run()
    assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
        second.to_dict(), sort_keys=True
    )


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    slots=st.integers(min_value=1, max_value=5),
    horizon=st.floats(min_value=5.0, max_value=20.0),
)
def test_zero_arrival_open_run_is_the_closed_run(seed, slots, horizon):
    machine = core2quad_amp()
    workload = Workload.random(slots, seed=seed, queue_length=64)
    closed = WorkloadRun(workload, machine).run(horizon)
    opened = OpenSystemRun(
        OpenSystemPlan(seed=seed, rate=0.0, horizon=horizon),
        machine,
        closed_workload=workload,
    ).run()
    assert [
        (p.pid, p.name, p.completion, p.stats.cpu_time, p.stats.switches)
        for p in closed.completed
    ] == [
        (p.pid, p.name, p.completion, p.stats.cpu_time, p.stats.switches)
        for p in opened.sim_result.completed
    ]
    assert opened.arrived == 0 and opened.cancelled == 0
