"""End-to-end round-trip properties across the whole toolchain.

instrument → materialize → disassemble → re-assemble → interpret must
agree with interpreting the original program: the rewritten binary
survives a full serialization cycle without changing meaning.
"""

from hypothesis import given, settings, strategies as st

from repro.instrument import LoopStrategy, instrument
from repro.isa import assemble, disassemble
from repro.isa.interpreter import InterpreterError, run_program
from repro.workloads.generator import random_program

seeds = st.integers(min_value=0, max_value=2000)


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_disassemble_assemble_roundtrip_random_programs(seed):
    program = random_program(seed=seed)
    text = disassemble(program)
    again = assemble(text)
    assert disassemble(again) == text


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_full_toolchain_roundtrip_preserves_semantics(seed):
    program = random_program(seed=seed)
    try:
        original = run_program(program, max_steps=300_000)
    except InterpreterError:
        return  # Indirect flow or runaway loop: not interpretable.

    instrumented = instrument(program, LoopStrategy(10))
    rewritten = instrumented.materialize()
    # Serialize and re-parse the rewritten binary before executing.
    reparsed = assemble(disassemble(rewritten))
    replayed = run_program(reparsed, max_steps=3_000_000)
    assert replayed.observable() == original.observable()


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_instrumentation_is_idempotent_on_structure(seed):
    """Instrumenting the same program twice yields identical binaries."""
    program = random_program(seed=seed)
    a = instrument(program, LoopStrategy(10)).materialize()
    b = instrument(program, LoopStrategy(10)).materialize()
    assert disassemble(a) == disassemble(b)
