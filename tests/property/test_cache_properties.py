"""Property-based tests for the LRU cache simulator."""

from hypothesis import given, settings, strategies as st

from repro.sim.cache import SetAssociativeCache

addresses = st.lists(
    st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=300
)


def _fresh():
    return SetAssociativeCache(4096, associativity=4, line_size=64)


@settings(max_examples=40, deadline=None)
@given(stream=addresses)
def test_hits_plus_misses_equals_accesses(stream):
    cache = _fresh()
    cache.access_stream(stream)
    assert cache.stats.accesses == len(stream)
    assert cache.stats.hits + cache.stats.misses == len(stream)


@settings(max_examples=40, deadline=None)
@given(stream=addresses)
def test_immediate_rereference_hits(stream):
    cache = _fresh()
    for address in stream:
        cache.access(address)
        assert cache.access(address)  # Just-touched lines always hit.


@settings(max_examples=40, deadline=None)
@given(stream=addresses)
def test_inclusion_monotone_in_associativity(stream):
    """A fully-associative cache of equal capacity never misses more
    than a set-associative one on the same stream (LRU stack property)."""
    limited = SetAssociativeCache(4096, associativity=4, line_size=64)
    full = SetAssociativeCache(4096, associativity=64, line_size=64)
    limited.access_stream(stream)
    full.access_stream(stream)
    assert full.stats.misses <= limited.stats.misses


@settings(max_examples=40, deadline=None)
@given(stream=addresses)
def test_same_line_addresses_equivalent(stream):
    """Accesses are line-granular: the offset within a line is ignored."""
    a = _fresh()
    b = _fresh()
    a.access_stream(stream)
    b.access_stream([addr & ~63 for addr in stream])
    assert a.stats.misses == b.stats.misses


@settings(max_examples=30, deadline=None)
@given(stream=addresses)
def test_cold_miss_lower_bound(stream):
    """Every distinct line's first touch is a miss."""
    cache = _fresh()
    cache.access_stream(stream)
    distinct_lines = len({addr // 64 for addr in stream})
    assert cache.stats.misses >= distinct_lines
    assert cache.stats.misses <= cache.stats.accesses
