"""Property-based tests for live-register analysis."""

from hypothesis import given, settings, strategies as st

from repro.analysis.liveness import ALL_LOCATIONS, compute_liveness, def_use
from repro.program import build_cfg
from repro.workloads.generator import random_program

seeds = st.integers(min_value=0, max_value=5000)


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_dataflow_equations_hold(seed):
    """The result is a fixpoint of in = gen ∪ (out − kill) and
    out = ∪ succ.in (plus the exit convention)."""
    program = random_program(seed=seed)
    for proc in program:
        cfg = build_cfg(proc)
        result = compute_liveness(cfg)
        for block in cfg:
            gen, kill = set(), set()
            seen = set()
            for instr in block.instrs:
                defs, uses = def_use(instr)
                gen |= uses - seen
                seen |= defs
            kill = seen
            out = set()
            succs = cfg.succs(block.index)
            if succs:
                for succ in succs:
                    out |= result.live_in[succ]
            else:
                out = set(ALL_LOCATIONS)
            assert result.live_out[block.index] == out
            assert result.live_in[block.index] == gen | (out - kill)


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_uses_are_live(seed):
    """Every register a block uses before defining is live at its entry."""
    program = random_program(seed=seed)
    for proc in program:
        cfg = build_cfg(proc)
        result = compute_liveness(cfg)
        for block in cfg:
            seen = set()
            for instr in block.instrs:
                defs, uses = def_use(instr)
                for used in uses - seen:
                    assert used in result.live_in[block.index]
                seen |= defs


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_smaller_exit_convention_never_larger(seed):
    """Liveness is monotone in the exit convention."""
    program = random_program(seed=seed)
    for proc in program:
        cfg = build_cfg(proc)
        conservative = compute_liveness(cfg)
        empty = compute_liveness(cfg, live_at_exit=())
        for block in range(len(cfg)):
            assert empty.live_in[block] <= conservative.live_in[block]
            assert empty.live_out[block] <= conservative.live_out[block]
