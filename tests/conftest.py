"""Shared fixtures: canonical programs and machines used across tests."""

from __future__ import annotations

import pytest

from repro.isa import ProgramBuilder, assemble
from repro.sim import core2quad_amp
from repro.sim.tracegen import BehaviorSpec


@pytest.fixture(scope="session")
def machine():
    """The paper's 4-core AMP."""
    return core2quad_amp()


@pytest.fixture()
def straightline_program():
    """A single-block program: movi/add/ret."""
    pb = ProgramBuilder("straight")
    with pb.proc("main") as b:
        b.movi("r1", 1)
        b.add("r2", "r1", 2)
        b.ret()
    return pb.build()


@pytest.fixture()
def loop_program():
    """One counted loop plus a tail."""
    source = """
    .program looped
    .region A 1048576
    .proc main
        movi r1, 0
        movi r2, 10
    loop:
        load r3, A[r1]:8
        add r4, r4, r3
        add r1, r1, 1
        cmp r1, r2
        br lt, loop
        ret
    .endproc
    """
    return assemble(source)


@pytest.fixture()
def diamond_program():
    """If/else diamond followed by a join."""
    source = """
    .proc main
        cmp r1, 5
        br ge, big
        movi r2, 1
        jmp join
    big:
        movi r2, 2
    join:
        add r3, r2, 1
        ret
    .endproc
    """
    return assemble(source)


@pytest.fixture()
def nested_loop_program():
    """Two-level nest: outer loop containing an inner loop."""
    source = """
    .region A 33554432
    .proc main
        movi r1, 0
    outer:
        movi r2, 0
    inner:
        load r3, A[r2]:64
        add r3, r3, 1
        add r2, r2, 1
        cmp r2, 100
        br lt, inner
        add r1, r1, 1
        cmp r1, 10
        br lt, outer
        ret
    .endproc
    """
    return assemble(source)


@pytest.fixture()
def call_program():
    """main calls helper inside a loop; helper has its own loop."""
    source = """
    .region A 33554432
    .proc main
        movi r1, 0
    outer:
        call helper
        add r1, r1, 1
        cmp r1, 5
        br lt, outer
        ret
    .endproc
    .proc helper
        movi r2, 0
    hloop:
        load r3, A[r2]:64
        add r2, r2, 1
        cmp r2, 50
        br lt, hloop
        ret
    .endproc
    """
    return assemble(source)


def make_phased_program(
    name: str = "phased",
    compute_iters: int = 1000,
    memory_iters: int = 1000,
    outer: int = 10,
):
    """A two-phase benchmark used by simulator and tuning tests.

    Returns (program, behavior_spec): an outer loop alternating a
    compute-bound phase (fp-heavy, 48-instruction body) and a
    memory-bound phase (streaming loads/stores, 51-instruction body).
    """
    pb = ProgramBuilder(name)
    pb.region("BIG", 32 << 20)
    with pb.proc("main") as b:
        b.movi("r1", 0)
        b.movi("r2", outer)
        b.label("outer")
        b.movi("r3", 0)
        b.label("cloop")
        for _ in range(15):
            b.fmul("f1", "f1", "f2")
            b.fadd("f2", "f2", "f1")
        for _ in range(15):
            b.xor("r10", "r10", "r4")
        b.add("r3", "r3", 1)
        b.cmp("r3", compute_iters)
        b.br("lt", "cloop")
        b.movi("r5", 0)
        b.label("mloop")
        for _ in range(12):
            b.load("r6", "BIG", index="r5", stride=4)
            b.add("r6", "r6", 1)
        for _ in range(12):
            b.store("BIG", "r6", index="r5", stride=4)
        b.add("r5", "r5", 1)
        b.cmp("r5", memory_iters)
        b.br("lt", "mloop")
        b.add("r1", "r1", 1)
        b.cmp("r1", "r2")
        b.br("lt", "outer")
        b.ret()
    spec = BehaviorSpec(
        trip_counts={
            ("main", "outer"): outer,
            ("main", "cloop"): compute_iters,
            ("main", "mloop"): memory_iters,
        }
    )
    return pb.build(), spec


@pytest.fixture()
def phased_program():
    return make_phased_program()
