"""Unit tests for the binary rewriter."""

import pytest

from repro.instrument import (
    BBStrategy,
    IntervalStrategy,
    LoopStrategy,
    instrument,
)
from repro.instrument.phase_mark import MARK_DATA_BYTES
from repro.isa.instructions import Opcode
from repro.program import build_cfg, validate_program


def test_instrument_indexes_marks(phased_program):
    program, _ = phased_program
    inst = instrument(program, LoopStrategy(20))
    assert inst.marks
    for mark in inst.marks:
        for src, dst in mark.point.trigger_edges:
            assert inst.mark_at_edge(mark.point.proc, src, dst) is mark


def test_mark_ids_dense(phased_program):
    program, _ = phased_program
    inst = instrument(program, LoopStrategy(20))
    assert [m.mark_id for m in inst.marks] == list(range(len(inst.marks)))


def test_space_overhead_positive(phased_program):
    program, _ = phased_program
    inst = instrument(program, LoopStrategy(20))
    assert inst.added_bytes == sum(m.total_bytes for m in inst.marks)
    assert inst.space_overhead > 0


def test_no_marks_no_overhead(straightline_program):
    inst = instrument(straightline_program, LoopStrategy(45))
    assert inst.marks == []
    assert inst.space_overhead == 0.0


def test_materialized_program_validates(phased_program):
    program, _ = phased_program
    for strategy in (BBStrategy(10, 0), IntervalStrategy(20), LoopStrategy(20)):
        inst = instrument(program, strategy)
        tuned = inst.materialize()
        assert validate_program(tuned) == []


def test_materialized_size_matches_accounting(phased_program):
    """Physical code growth equals the accounted bytes minus data
    (descriptor data is not text-segment code)."""
    program, _ = phased_program
    inst = instrument(program, LoopStrategy(20))
    tuned = inst.materialize()
    code_growth = tuned.size_bytes - program.size_bytes
    accounted_code = inst.added_bytes - MARK_DATA_BYTES * len(inst.marks)
    assert code_growth == accounted_code


def test_materialized_contains_trampolines(phased_program):
    program, _ = phased_program
    inst = instrument(program, LoopStrategy(20))
    tuned = inst.materialize()
    main = tuned["main"]
    sys_marks = [
        i for i in main.code
        if i.opcode is Opcode.SYS and i.operands[0] == 0x20
    ]
    assert len(sys_marks) == len(
        [m for m in inst.marks if m.point.proc == "main"]
    )


def test_materialized_preserves_block_count(phased_program):
    """Original blocks survive; only trampolines are added."""
    program, _ = phased_program
    inst = instrument(program, LoopStrategy(20))
    tuned = inst.materialize()
    original_cfg = build_cfg(program["main"])
    tuned_cfg = build_cfg(tuned["main"])
    assert len(tuned_cfg) >= len(original_cfg)


def test_instrument_with_precomputed_typing(phased_program):
    from repro.analysis import StaticBlockTyper, inject_clustering_error

    program, _ = phased_program
    typing = StaticBlockTyper().type_blocks(program)
    flipped = inject_clustering_error(typing, 1.0)
    a = instrument(program, LoopStrategy(20), typing=typing)
    b = instrument(program, LoopStrategy(20), typing=flipped)
    # Same sections marked, opposite announced types.
    types_a = {m.point.uid: m.phase_type for m in a.marks}
    types_b = {m.point.uid: m.phase_type for m in b.marks}
    assert set(types_a) == set(types_b)
    assert all(types_a[u] == 1 - types_b[u] for u in types_a)


def test_entry_mark_indexed():
    from repro.isa import ProgramBuilder

    pb = ProgramBuilder("t")
    pb.region("BIG", 32 << 20)
    with pb.proc("main") as b:
        # A sized memory loop right at the procedure entry.
        b.label("loop")
        for _ in range(12):
            b.load("r1", "BIG", index="r2", stride=64)
            b.add("r3", "r3", "r1")
        b.add("r2", "r2", 1)
        b.cmp("r2", 100)
        b.br("lt", "loop")
        b.ret()
    program = pb.build()
    inst = instrument(program, BBStrategy(10, 0))
    assert inst.entry_mark("main") is not None
