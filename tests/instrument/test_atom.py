"""Unit tests for the ATOM-style baseline instrumenter."""

from repro.instrument import AtomInstrumenter, LoopStrategy, instrument
from repro.instrument.atom_baseline import ATOM_PROBE_CYCLES, atom_fragment
from repro.instrument.phase_mark import MARK_FIRE_CYCLES
from repro.isa.instructions import Opcode


def test_fragment_saves_whole_register_file():
    fragment = atom_fragment(0)
    pushes = sum(1 for i in fragment if i.opcode is Opcode.PUSH)
    pops = sum(1 for i in fragment if i.opcode is Opcode.POP)
    assert pushes == pops == 16


def test_probe_per_ordinary_block(phased_program):
    program, _ = phased_program
    from repro.program import build_cfg
    from repro.program.basic_block import NodeKind

    result = AtomInstrumenter().instrument(program)
    expected = sum(
        1
        for proc in program
        for block in build_cfg(proc)
        if block.kind is NodeKind.BLOCK and len(block) > 0
    )
    assert result.probe_count == expected


def test_atom_heavier_than_phase_marks(phased_program):
    """The basis of the paper's ~10x execution-speed comparison."""
    program, _ = phased_program
    atom = AtomInstrumenter().instrument(program)
    tuned = instrument(program, LoopStrategy(20))
    assert atom.probe_count > len(tuned.marks)
    assert atom.added_bytes > tuned.added_bytes
    assert ATOM_PROBE_CYCLES / MARK_FIRE_CYCLES >= 10


def test_space_overhead_helper(phased_program):
    program, _ = phased_program
    result = AtomInstrumenter().instrument(program)
    assert result.space_overhead(program) == (
        result.added_bytes / program.size_bytes
    )
