"""Semantic preservation: instrumented binaries compute the same thing.

The paper's transparency claim depends on phase marks being
behaviour-preserving: trampolines save and restore every register they
touch, balance the stack, and return control to exactly the section
entry they guard.  These tests run original and materialized binaries
through the reference interpreter and require identical observable
state — the only permitted difference is the added ``SYS_PHASE_MARK``
events.
"""

import pytest

from repro.instrument import BBStrategy, IntervalStrategy, LoopStrategy, instrument
from repro.instrument.phase_mark import SYS_PHASE_MARK
from repro.isa import assemble
from repro.isa.interpreter import run_program

STRATEGIES = (BBStrategy(10, 0), BBStrategy(15, 2), IntervalStrategy(20), LoopStrategy(10))

TWO_PHASE = """
.region BIG 1048576
.proc main
    movi r1, 0
outer:
    movi r2, 0
compute:
""" + "    fmul f1, f1, f2\n    fadd f2, f2, f1\n" * 8 + """
    add r2, r2, 1
    cmp r2, 7
    br lt, compute
    movi r3, 0
memory:
""" + "    load r4, BIG[r3]:4\n    add r5, r5, r4\n    store BIG[r3]:4, r5\n" * 6 + """
    add r3, r3, 1
    cmp r3, 5
    br lt, memory
    add r1, r1, 1
    cmp r1, 4
    br lt, outer
    sys 9
    ret
.endproc
"""

CALLS = """
.region BIG 1048576
.proc main
    movi r1, 0
loop:
    call kernel
    add r1, r1, 1
    cmp r1, 6
    br lt, loop
    ret
.endproc
.proc kernel
    movi r2, 0
k:
""" + "    load r3, BIG[r2]:8\n    add r4, r4, r3\n" * 7 + """
    add r2, r2, 1
    cmp r2, 9
    br lt, k
    ret
.endproc
"""

DIAMONDS = """
.region BIG 1048576
.proc main
    movi r1, 0
loop:
    cmp r1, 5
    br ge, side_b
""" + "    add r2, r2, 3\n    xor r2, r2, r1\n" * 6 + """
    jmp join
side_b:
""" + "    load r3, BIG[r1]:8\n    add r3, r3, 1\n" * 6 + """
join:
    add r1, r1, 1
    cmp r1, 12
    br lt, loop
    ret
.endproc
"""


@pytest.mark.parametrize("source", [TWO_PHASE, CALLS, DIAMONDS])
@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
def test_materialized_binary_equivalent(source, strategy):
    program = assemble(source)
    inst = instrument(program, strategy)
    tuned = inst.materialize()

    original = run_program(program)
    rewritten = run_program(tuned)

    assert rewritten.observable() == original.observable()
    # The only behavioural difference: mark syscalls fired.
    mark_events = [
        s for s in rewritten.syscalls if s[0] == SYS_PHASE_MARK
    ]
    if inst.marks:
        trigger_count = sum(
            1 for m in inst.marks if m.point.trigger_edges or m.point.at_proc_entry
        )
        assert (len(mark_events) > 0) == (trigger_count > 0)


def test_mark_events_carry_type_and_id():
    program = assemble(TWO_PHASE)
    inst = instrument(program, LoopStrategy(10))
    assert inst.marks
    rewritten = run_program(inst.materialize())
    events = [s for s in rewritten.syscalls if s[0] == SYS_PHASE_MARK]
    assert events
    known = {(m.phase_type, m.mark_id) for m in inst.marks}
    for _, phase_type, mark_id in events:
        assert (phase_type, mark_id) in known


def test_mark_firing_counts_match_loop_entries():
    """Loop-entry marks fire exactly once per entry to the loop."""
    program = assemble(TWO_PHASE)
    inst = instrument(program, LoopStrategy(10))
    rewritten = run_program(inst.materialize())
    events = [s for s in rewritten.syscalls if s[0] == SYS_PHASE_MARK]
    by_mark = {}
    for _, _, mark_id in events:
        by_mark[mark_id] = by_mark.get(mark_id, 0) + 1
    # The outer loop runs 4 times; each inner loop is entered once per
    # outer iteration.
    for mark in inst.marks:
        if mark.point.kind == "loop" and not mark.point.at_proc_entry:
            assert by_mark.get(mark.mark_id, 0) == 4


def test_generated_programs_preserved():
    """Random valid programs (no indirect flow) stay equivalent."""
    from repro.workloads.generator import random_program

    checked = 0
    for seed in range(20):
        program = random_program(seed=seed)
        try:
            original = run_program(program, max_steps=500_000)
        except Exception:
            continue  # Indirect flow or runaway loop: skip this seed.
        inst = instrument(program, LoopStrategy(10))
        rewritten = run_program(inst.materialize(), max_steps=2_000_000)
        assert rewritten.observable() == original.observable()
        checked += 1
    assert checked >= 5
