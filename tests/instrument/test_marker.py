"""Unit tests for marking strategies and the strategy parser."""

import pytest

from repro.errors import InstrumentationError
from repro.instrument import (
    BBStrategy,
    IntervalStrategy,
    LoopStrategy,
    parse_strategy,
)


def test_names():
    assert BBStrategy(15, 2).name == "BB[15,2]"
    assert IntervalStrategy(45).name == "Int[45]"
    assert LoopStrategy(60).name == "Loop[60]"


@pytest.mark.parametrize(
    "name, expected",
    [
        ("BB[10,0]", BBStrategy(10, 0)),
        ("BB[20,3]", BBStrategy(20, 3)),
        ("Int[30]", IntervalStrategy(30)),
        ("Loop[45]", LoopStrategy(45)),
    ],
)
def test_parse_roundtrip(name, expected):
    strategy = parse_strategy(name)
    assert strategy == expected
    assert strategy.name == name


def test_parse_bb_defaults_lookahead_zero():
    assert parse_strategy("BB[15]") == BBStrategy(15, 0)


@pytest.mark.parametrize(
    "bad", ["Huh[10]", "BB[]", "Loop[45,2]", "Int[30,1]", "BB[x,y]", ""]
)
def test_parse_rejects_malformed(bad):
    with pytest.raises(InstrumentationError):
        parse_strategy(bad)


def test_strategies_compute_points(phased_program):
    from repro.analysis import StaticBlockTyper, annotate_program

    program, _ = phased_program
    aprog = annotate_program(
        program, StaticBlockTyper().type_blocks(program)
    )
    for strategy in (BBStrategy(10, 0), IntervalStrategy(20), LoopStrategy(20)):
        points = strategy.compute_points(aprog)
        assert isinstance(points, list)
