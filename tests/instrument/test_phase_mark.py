"""Unit tests for phase-mark fragments and byte accounting."""

from repro.analysis.transitions import TransitionPoint
from repro.instrument.phase_mark import (
    INLINE_JUMP_BYTES,
    MARK_DATA_BYTES,
    PhaseMark,
    SYS_PHASE_MARK,
    mark_trampoline,
)
from repro.isa.encoding import code_size
from repro.isa.instructions import Opcode


def _point(trigger_edges=((0, 1),), at_entry=False):
    return TransitionPoint(
        proc="main",
        kind="loop",
        phase_type=1,
        entry_block=1,
        section_blocks=frozenset({1}),
        size_instrs=50,
        trigger_edges=trigger_edges,
        at_proc_entry=at_entry,
    )


def test_trampoline_shape():
    code = mark_trampoline(3, 1, ".B1")
    assert code[-1].opcode is Opcode.JMP
    assert code[-1].operands[0] == ".B1"
    sys_calls = [i for i in code if i.opcode is Opcode.SYS]
    assert len(sys_calls) == 1
    assert sys_calls[0].operands[0] == SYS_PHASE_MARK
    pushes = sum(1 for i in code if i.opcode is Opcode.PUSH)
    pops = sum(1 for i in code if i.opcode is Opcode.POP)
    assert pushes == pops == 3


def test_trampoline_carries_ids():
    code = mark_trampoline(7, 2, "x")
    immediates = [
        i.operands[1] for i in code if i.opcode is Opcode.MOVI
    ]
    assert 2 in immediates  # Phase type.
    assert 7 in immediates  # Mark id.


def test_mark_under_78_bytes():
    """The paper: each phase mark is at most 78 bytes."""
    mark = PhaseMark(0, _point(), fallthrough_edges=1)
    assert mark.total_bytes <= 78


def test_fallthrough_stub_accounting():
    no_stub = PhaseMark(0, _point(), fallthrough_edges=0)
    one_stub = PhaseMark(0, _point(), fallthrough_edges=1)
    assert one_stub.total_bytes - no_stub.total_bytes == INLINE_JUMP_BYTES


def test_entry_mark_bytes():
    entry_only = PhaseMark(0, _point(trigger_edges=(), at_entry=True))
    assert entry_only.total_bytes == (
        MARK_DATA_BYTES + entry_only.entry_inline_bytes
    )
    # The inline body omits the trampoline's back jump.
    assert entry_only.entry_inline_bytes < entry_only.trampoline_bytes


def test_trampoline_bytes_match_encoding():
    mark = PhaseMark(5, _point())
    assert mark.trampoline_bytes == code_size(mark_trampoline(5, 1, "x"))
