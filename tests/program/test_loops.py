"""Unit tests for natural-loop detection and nesting."""

from repro.isa import assemble
from repro.program import build_cfg, find_loops
from repro.program.loops import block_nesting_levels


def test_no_loops_in_straightline(straightline_program):
    cfg = build_cfg(straightline_program["main"])
    assert find_loops(cfg) == []


def test_single_loop(loop_program):
    cfg = build_cfg(loop_program["main"])
    loops = find_loops(cfg)
    assert len(loops) == 1
    loop = loops[0]
    assert loop.header in loop.body
    assert loop.parent is None
    assert loop.depth == 0


def test_nested_loops(nested_loop_program):
    cfg = build_cfg(nested_loop_program["main"])
    loops = find_loops(cfg)
    assert len(loops) == 2
    inner = next(l for l in loops if l.depth == 1)
    outer = next(l for l in loops if l.depth == 0)
    assert outer.contains(inner)
    assert inner.parent is outer
    assert inner in outer.children
    assert inner.body < outer.body


def test_innermost_first_ordering(nested_loop_program):
    cfg = build_cfg(nested_loop_program["main"])
    loops = find_loops(cfg)
    depths = [l.depth for l in loops]
    assert depths == sorted(depths, reverse=True)


def test_loops_sharing_header_merged():
    # Two back edges to the same header (continue-like structure).
    program = assemble(
        """
        .proc main
            movi r1, 0
        head:
            add r1, r1, 1
            cmp r1, 5
            br lt, head
            cmp r1, 10
            br lt, head
            ret
        .endproc
        """
    )
    cfg = build_cfg(program["main"])
    loops = find_loops(cfg)
    assert len(loops) == 1
    assert len(cfg.back_edges()) == 2


def test_disjoint_sibling_loops():
    program = assemble(
        """
        .proc main
            movi r1, 0
        outer:
            movi r2, 0
        a:
            add r2, r2, 1
            cmp r2, 3
            br lt, a
            movi r3, 0
        b:
            add r3, r3, 1
            cmp r3, 3
            br lt, b
            add r1, r1, 1
            cmp r1, 3
            br lt, outer
            ret
        .endproc
        """
    )
    cfg = build_cfg(program["main"])
    loops = find_loops(cfg)
    assert len(loops) == 3
    outer = next(l for l in loops if l.depth == 0)
    assert len(outer.children) == 2
    a, b = outer.children
    assert not a.body & b.body  # Disjoint siblings.


def test_block_nesting_levels(nested_loop_program):
    cfg = build_cfg(nested_loop_program["main"])
    loops = find_loops(cfg)
    levels = block_nesting_levels(cfg, loops)
    inner = next(l for l in loops if l.depth == 1)
    assert levels[inner.header] == 2  # Inside both loops.
    assert levels[0] == 0  # Entry outside all loops.


def test_loop_uid_unique(nested_loop_program):
    cfg = build_cfg(nested_loop_program["main"])
    loops = find_loops(cfg)
    uids = [l.uid for l in loops]
    assert len(uids) == len(set(uids))
