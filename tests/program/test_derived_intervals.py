"""Unit tests for the derived interval sequence (limit graph)."""

from repro.isa import assemble
from repro.program import build_cfg, derived_sequence, is_reducible
from repro.workloads.generator import random_program


def test_straightline_is_order_one(straightline_program):
    cfg = build_cfg(straightline_program["main"])
    sequence = derived_sequence(cfg)
    assert len(sequence[-1][0]) == 1
    assert is_reducible(cfg)


def test_nested_loops_reduce(nested_loop_program):
    cfg = build_cfg(nested_loop_program["main"])
    assert is_reducible(cfg)
    sequence = derived_sequence(cfg)
    sizes = [len(nodes) for nodes, _ in sequence]
    # Strictly shrinking until the single-node limit graph.
    assert sizes[-1] == 1
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))


def test_structured_programs_are_reducible():
    """The builder and generator only emit structured control flow."""
    for seed in range(8):
        program = random_program(seed=seed)
        for proc in program:
            assert is_reducible(build_cfg(proc))


def test_spec_suite_reducible():
    from repro.workloads import spec_suite

    for bench in spec_suite():
        for proc in bench.program:
            assert is_reducible(build_cfg(proc))


def test_derived_sequence_edges_consistent(call_program):
    cfg = build_cfg(call_program["main"])
    for nodes, adjacency in derived_sequence(cfg):
        for src, dsts in adjacency.items():
            assert src in nodes
            assert all(d in nodes for d in dsts)
            assert src not in dsts
