"""Unit tests for Allen's interval partitioning."""

from repro.isa import assemble
from repro.program import build_cfg, partition_intervals
from repro.program.intervals import interval_graph


def _assert_partition(cfg, intervals):
    """Every reachable block in exactly one interval."""
    reachable = set(cfg.reverse_postorder())
    seen = []
    for interval in intervals:
        seen.extend(interval.nodes)
    assert sorted(seen) == sorted(reachable)


def test_straightline_is_one_interval(straightline_program):
    cfg = build_cfg(straightline_program["main"])
    intervals = partition_intervals(cfg)
    assert len(intervals) == 1
    assert intervals[0].header == 0


def test_loop_captured_by_interval(loop_program):
    """Intervals frequently capture small loops (paper, II-A2b)."""
    cfg = build_cfg(loop_program["main"])
    intervals = partition_intervals(cfg)
    _assert_partition(cfg, intervals)
    back = cfg.back_edges()[0]
    owner = next(i for i in intervals if back.dst in i)
    assert back.src in owner  # Whole loop in one interval.


def test_diamond_single_interval(diamond_program):
    cfg = build_cfg(diamond_program["main"])
    intervals = partition_intervals(cfg)
    # The diamond is single-entry: entirely absorbed by the first interval.
    assert len(intervals) == 1
    _assert_partition(cfg, intervals)


def test_nested_loops_partition(nested_loop_program):
    cfg = build_cfg(nested_loop_program["main"])
    intervals = partition_intervals(cfg)
    _assert_partition(cfg, intervals)
    # Headers are unique.
    headers = [i.header for i in intervals]
    assert len(headers) == len(set(headers))


def test_interval_header_is_first_member(nested_loop_program):
    cfg = build_cfg(nested_loop_program["main"])
    for interval in partition_intervals(cfg):
        assert interval.nodes[0] == interval.header


def test_interval_single_entry_property(call_program):
    """No member except the header has predecessors outside the interval."""
    cfg = build_cfg(call_program["main"])
    intervals = partition_intervals(cfg)
    _assert_partition(cfg, intervals)
    for interval in intervals:
        members = set(interval.nodes)
        for node in interval.nodes:
            if node == interval.header:
                continue
            assert all(p in members for p in cfg.preds(node))


def test_interval_graph_edges(nested_loop_program):
    cfg = build_cfg(nested_loop_program["main"])
    intervals = partition_intervals(cfg)
    graph = interval_graph(cfg, intervals)
    assert set(graph) == set(range(len(intervals)))
    for src, dsts in graph.items():
        assert src not in dsts  # No self edges in the derived graph.
