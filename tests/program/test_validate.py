"""Unit tests for program validation."""

import pytest

from repro.errors import ProgramStructureError
from repro.isa import ProgramBuilder, assemble
from repro.program import validate_program


def test_valid_program_no_warnings(loop_program):
    assert validate_program(loop_program) == []


def test_fall_off_end_rejected():
    program = assemble(".proc main\n    nop\n    nop\n.endproc")
    with pytest.raises(ProgramStructureError, match="fall off"):
        validate_program(program)


def test_unknown_call_target_rejected():
    pb = ProgramBuilder("t")
    with pb.proc("main") as b:
        b.call("ghost")
        b.ret()
    with pytest.raises(ProgramStructureError, match="undefined procedure"):
        validate_program(pb.build())


def test_undeclared_region_rejected():
    pb = ProgramBuilder("t")
    with pb.proc("main") as b:
        b.load("r1", "ghost", index="r2", stride=8)
        b.ret()
    with pytest.raises(ProgramStructureError, match="unknown memory region"):
        validate_program(pb.build())


def test_oversized_stride_rejected():
    pb = ProgramBuilder("t")
    pb.region("A", 64)
    with pb.proc("main") as b:
        b.load("r1", "A", index="r2", stride=128)
        b.ret()
    with pytest.raises(ProgramStructureError, match="stride 128 exceeds"):
        validate_program(pb.build())


def test_unreachable_code_warns():
    program = assemble(
        """
        .proc main
            jmp out
            add r1, r1, 1
        out:
            ret
        .endproc
        """
    )
    warnings = validate_program(program)
    assert warnings and "unreachable" in warnings[0]


def test_strict_reachability_raises():
    program = assemble(
        """
        .proc main
            jmp out
            nop
        out:
            ret
        .endproc
        """
    )
    with pytest.raises(ProgramStructureError, match="unreachable"):
        validate_program(program, strict_reachability=True)


def test_spec_suite_validates():
    from repro.workloads import spec_suite

    for benchmark in spec_suite():
        assert validate_program(benchmark.program) == []
