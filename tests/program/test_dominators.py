"""Unit tests for dominator computation."""

from repro.isa import assemble
from repro.program import build_cfg, compute_dominators, dominates
from repro.program.dominators import dominator_tree_depths


def test_entry_dominates_everything(nested_loop_program):
    cfg = build_cfg(nested_loop_program["main"])
    idom = compute_dominators(cfg)
    for block in cfg.reverse_postorder():
        assert dominates(idom, 0, block)


def test_every_block_dominates_itself(diamond_program):
    cfg = build_cfg(diamond_program["main"])
    idom = compute_dominators(cfg)
    for block in range(len(cfg)):
        assert dominates(idom, block, block)


def test_diamond_sides_do_not_dominate_join(diamond_program):
    cfg = build_cfg(diamond_program["main"])
    idom = compute_dominators(cfg)
    # Blocks 1 and 2 are the two sides, block 3 the join.
    assert not dominates(idom, 1, 3)
    assert not dominates(idom, 2, 3)
    assert idom[3] == 0


def test_loop_header_dominates_body(nested_loop_program):
    cfg = build_cfg(nested_loop_program["main"])
    idom = compute_dominators(cfg)
    for edge in cfg.back_edges():
        assert dominates(idom, edge.dst, edge.src)


def test_entry_has_no_idom(loop_program):
    cfg = build_cfg(loop_program["main"])
    idom = compute_dominators(cfg)
    assert idom[0] is None


def test_dominator_depths(diamond_program):
    cfg = build_cfg(diamond_program["main"])
    idom = compute_dominators(cfg)
    depths = dominator_tree_depths(idom)
    assert depths[0] == 0
    assert depths[1] == depths[2] == 1
    assert depths[3] == 1  # Join's idom is the entry.


def test_unreachable_block_not_dominated():
    program = assemble(
        """
        .proc main
            jmp out
            add r1, r1, 1
        out:
            ret
        .endproc
        """
    )
    cfg = build_cfg(program["main"])
    idom = compute_dominators(cfg)
    reachable = set(cfg.reverse_postorder())
    unreachable = [b for b in range(len(cfg)) if b not in reachable]
    assert unreachable
    for block in unreachable:
        assert idom[block] is None
