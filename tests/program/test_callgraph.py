"""Unit tests for call graphs and SCCs."""

from repro.isa import assemble
from repro.program import build_callgraph


def test_simple_call_edge(call_program):
    graph = build_callgraph(call_program)
    assert graph.callees("main") == {"helper"}
    assert graph.callers("helper") == {"main"}


def test_bottom_up_order_callees_first(call_program):
    graph = build_callgraph(call_program)
    sccs = graph.bottom_up_sccs()
    flat = [name for scc in sccs for name in scc]
    assert flat.index("helper") < flat.index("main")


def test_self_recursion_detected():
    program = assemble(
        """
        .proc main
            call rec
            ret
        .endproc
        .proc rec
            cmp r1, 0
            br le, done
            call rec
        done:
            ret
        .endproc
        """
    )
    graph = build_callgraph(program)
    rec_scc = next(scc for scc in graph.sccs() if "rec" in scc)
    assert graph.is_recursive(rec_scc)
    main_scc = next(scc for scc in graph.sccs() if "main" in scc)
    assert not graph.is_recursive(main_scc)


def test_mutual_recursion_one_scc():
    program = assemble(
        """
        .proc main
            call even
            ret
        .endproc
        .proc even
            cmp r1, 0
            br le, out
            call odd
        out:
            ret
        .endproc
        .proc odd
            call even
            ret
        .endproc
        """
    )
    graph = build_callgraph(program)
    cycle = next(scc for scc in graph.sccs() if "even" in scc)
    assert set(cycle) == {"even", "odd"}
    assert graph.is_recursive(cycle)


def test_indirect_calls_contribute_no_edges():
    program = assemble(
        """
        .proc main
            movi r1, 0
            calli r1
            ret
        .endproc
        .proc target
            ret
        .endproc
        """
    )
    graph = build_callgraph(program)
    assert graph.callees("main") == set()
