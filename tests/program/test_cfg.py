"""Unit tests for CFG construction."""

import pytest

from repro.errors import ProgramStructureError
from repro.isa import assemble
from repro.program import build_cfg
from repro.program.basic_block import NodeKind
from repro.program.cfg import BACKWARD, FORWARD


def test_straightline_single_block(straightline_program):
    cfg = build_cfg(straightline_program["main"])
    assert len(cfg) == 1
    assert cfg.entry.index == 0
    assert cfg.succs(0) == []


def test_loop_back_edge_tagged(loop_program):
    cfg = build_cfg(loop_program["main"])
    back = cfg.back_edges()
    assert len(back) == 1
    assert back[0].kind == BACKWARD
    # The back edge targets the loop header, which dominates its source.
    header = back[0].dst
    assert header in cfg.succs(back[0].src)


def test_diamond_structure(diamond_program):
    cfg = build_cfg(diamond_program["main"])
    # entry, then-side, else-side, join.
    assert len(cfg) == 4
    assert sorted(cfg.succs(0)) == [1, 2]
    join = cfg.succs(1)
    assert cfg.succs(2) == join
    assert all(e.kind == FORWARD for e in cfg.edges)


def test_call_becomes_special_node(call_program):
    cfg = build_cfg(call_program["main"])
    call_nodes = [b for b in cfg if b.kind is NodeKind.CALL]
    assert len(call_nodes) == 1
    assert call_nodes[0].call_target == "helper"
    assert len(call_nodes[0]) == 1


def test_syscall_becomes_special_node():
    program = assemble(
        ".proc main\n    movi r1, 1\n    sys 4\n    add r1, r1, 1\n    ret\n.endproc"
    )
    cfg = build_cfg(program["main"])
    sys_nodes = [b for b in cfg if b.kind is NodeKind.SYSCALL]
    assert len(sys_nodes) == 1
    # Control falls through the special node.
    assert cfg.succs(sys_nodes[0].index) != []


def test_blocks_partition_instructions(nested_loop_program):
    proc = nested_loop_program["main"]
    cfg = build_cfg(proc)
    covered = []
    for block in cfg:
        covered.extend(range(block.start, block.end))
    assert covered == list(range(len(proc.code)))


def test_preds_are_inverse_of_succs(nested_loop_program):
    cfg = build_cfg(nested_loop_program["main"])
    for block in cfg:
        for succ in cfg.succs(block.index):
            assert block.index in cfg.preds(succ)


def test_reverse_postorder_starts_at_entry(nested_loop_program):
    cfg = build_cfg(nested_loop_program["main"])
    order = cfg.reverse_postorder()
    assert order[0] == 0
    assert len(order) == len(set(order))


def test_ignore_back_filters_edges(loop_program):
    cfg = build_cfg(loop_program["main"])
    back = cfg.back_edges()[0]
    assert back.dst in cfg.succs(back.src)
    assert back.dst not in cfg.succs(back.src, ignore_back=True)


def test_ret_has_no_successors(loop_program):
    cfg = build_cfg(loop_program["main"])
    ret_blocks = [b for b in cfg if b.instrs[-1].is_ret]
    assert ret_blocks
    for block in ret_blocks:
        assert cfg.succs(block.index) == []


def test_branch_to_end_label_rejected():
    program = assemble(
        ".proc main\n    cmp r1, 0\n    br lt, end\n    ret\nend:\n.endproc"
    )
    with pytest.raises(ProgramStructureError, match="past the end"):
        build_cfg(program["main"])


def test_indirect_jump_has_no_edges():
    program = assemble(".proc main\n    movi r1, 1\n    jmpi r1\n.endproc")
    cfg = build_cfg(program["main"])
    assert cfg.succs(len(cfg) - 1) == []
