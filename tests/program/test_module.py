"""Unit tests for Program/Procedure/MemoryRegion."""

import pytest

from repro.errors import ProgramStructureError
from repro.isa import assemble
from repro.isa.instructions import Instruction, Opcode
from repro.program.module import (
    DEFAULT_STACK_SIZE,
    MemoryRegion,
    Procedure,
    Program,
    STACK_REGION,
)


def test_region_validation():
    with pytest.raises(ProgramStructureError):
        MemoryRegion("bad", 0)
    with pytest.raises(ProgramStructureError):
        MemoryRegion("bad", 100, hot_fraction=0.0)
    with pytest.raises(ProgramStructureError):
        MemoryRegion("bad", 100, hot_fraction=1.5)


def test_working_set():
    region = MemoryRegion("r", 1000, hot_fraction=0.5)
    assert region.working_set == 500
    assert MemoryRegion("r", 10).working_set == 10


def test_procedure_requires_code():
    with pytest.raises(ProgramStructureError, match="no instructions"):
        Procedure("empty", [])


def test_procedure_label_bounds():
    code = [Instruction(Opcode.RET)]
    Procedure("ok", code, {"end": 1})  # Label at end is allowed.
    with pytest.raises(ProgramStructureError):
        Procedure("bad", code, {"beyond": 2})


def test_label_resolution():
    code = [Instruction(Opcode.NOP), Instruction(Opcode.RET)]
    proc = Procedure("p", code, {"x": 1})
    assert proc.resolve("x") == 1
    assert proc.label_at(1) == "x"
    assert proc.label_at(0) is None
    with pytest.raises(ProgramStructureError, match="unknown label"):
        proc.resolve("nope")


def test_program_requires_entry():
    proc = Procedure("f", [Instruction(Opcode.RET)])
    with pytest.raises(ProgramStructureError, match="entry procedure"):
        Program({"f": proc}, entry="main")


def test_implicit_stack_region():
    proc = Procedure("main", [Instruction(Opcode.RET)])
    program = Program({"main": proc})
    assert program.region(STACK_REGION).size == DEFAULT_STACK_SIZE


def test_unknown_region_raises():
    program = assemble(".proc main\n    ret\n.endproc")
    with pytest.raises(ProgramStructureError, match="unknown memory region"):
        program.region("ghost")


def test_size_bytes_sums_procedures():
    program = assemble(
        ".proc main\n    call f\n    ret\n.endproc\n"
        ".proc f\n    ret\n.endproc"
    )
    total = sum(p.size_bytes for p in program)
    assert program.size_bytes == total
    assert total > 0


def test_container_protocol():
    program = assemble(".proc main\n    ret\n.endproc")
    assert "main" in program
    assert "ghost" not in program
    assert program["main"].name == "main"
    assert [p.name for p in program] == ["main"]
