"""Networked broker transport: protocol, parity, auth, breaker,
priority.

The fault-injection and process-level chaos drills live in
``test_broker_net_faults.py`` and ``test_broker_net_chaos.py``; this
file pins the sunny-day contract — an HTTP sweep is byte-identical to
a filesystem sweep of the same tasks, auth and readonly are enforced,
and a dead server costs one bounded timeout per cooldown window.
"""

import threading
import time

import pytest

from repro.errors import BrokerError, BrokerUnavailableError, LeaseLostError
from repro.experiments.broker import Broker, connect, worker_loop
from repro.experiments.broker_net import HTTPBroker, make_broker_server
from repro.experiments.harness import run_tasks
from repro.taxonomy import BROKER_DOWN, state_of


def double(x):
    return x * 2


def _serve(directory, **kwargs):
    server = make_broker_server(directory, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, f"http://{host}:{port}"


@pytest.fixture()
def served(tmp_path):
    server, url = _serve(tmp_path / "q", lease_ttl=5)
    yield server, url, tmp_path / "q"
    server.shutdown()
    server.server_close()


def _fast_client(url, **kwargs):
    kwargs.setdefault("timeout", 2.0)
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("cooldown", 0.3)
    return HTTPBroker(url, **kwargs)


# -- transport basics --------------------------------------------------------


def test_connect_picks_transport_by_target(served, tmp_path):
    _server, url, directory = served
    assert isinstance(connect(url), HTTPBroker)
    assert isinstance(connect(str(tmp_path / "fsq")), Broker)
    assert connect(url).target == url


def test_client_adopts_server_lease_semantics(tmp_path):
    server, url = _serve(tmp_path / "q", lease_ttl=7.5, max_attempts=4)
    try:
        client = _fast_client(url)
        assert client.lease_ttl == 7.5
        assert client.max_attempts == 4
        assert client.readonly is False
    finally:
        server.shutdown()
        server.server_close()


def test_full_lease_lifecycle_over_http(served):
    _server, url, _directory = served
    client = _fast_client(url)
    sweep = client.enqueue(double, [1, 2], labels=["a", "b"])
    lease = client.claim("w1")
    assert lease is not None and lease.worker == "w1"
    fn, task = lease.load()
    assert fn(task) == task * 2
    deadline = client.heartbeat(lease)
    assert deadline > time.time()
    assert client.complete(lease, fn(task)) is True
    second = client.claim("w1")
    assert client.complete(second, second.load()[0](second.load()[1]))
    assert client.claim("w1") is None
    assert client.settled(sweep)
    assert client.replay(sweep) == {0: 2, 1: 4}


def test_http_sweep_byte_identical_to_filesystem(served, tmp_path):
    """The tentpole parity claim: same tasks through the HTTP transport
    and through a filesystem broker produce identical sweep ids and
    identical result digests."""
    _server, url, _directory = served
    net = _fast_client(url)
    net_sweep = net.enqueue(double, [3, 4, 5])
    while True:
        lease = net.claim("w")
        if lease is None:
            break
        fn, task = lease.load()
        net.complete(lease, fn(task))

    fs = Broker(tmp_path / "fsq")
    fs_sweep = fs.enqueue(double, [3, 4, 5])
    while True:
        lease = fs.claim("w")
        if lease is None:
            break
        fn, task = lease.load()
        fs.complete(lease, fn(task))

    assert net_sweep == fs_sweep
    assert net.result_digests(net_sweep) == fs.result_digests(fs_sweep)
    assert net.replay(net_sweep) == fs.replay(fs_sweep)


def test_run_tasks_over_http_broker(served):
    _server, url, _directory = served
    out = run_tasks(double, [1, 2, 3], jobs=1, backend="broker",
                    broker_dir=url)
    assert out == [2, 4, 6]


def test_run_tasks_shares_results_across_transports(served):
    """A sweep completed over HTTP replays instantly through a
    filesystem broker on the same queue directory (and vice versa):
    content keys and sweep ids are transport-independent."""
    _server, url, directory = served
    assert run_tasks(double, [7, 8], jobs=1, backend="broker",
                     broker_dir=url) == [14, 16]
    logs = []
    assert run_tasks(double, [7, 8], jobs=1, backend="broker",
                     broker_dir=str(directory),
                     log=logs.append) == [14, 16]
    assert any("2 of 2 task(s) already complete" in line for line in logs)


def test_worker_loop_drains_http_queue(served):
    _server, url, _directory = served
    client = _fast_client(url)
    sweep = client.enqueue(double, [10, 11, 12])
    completed = worker_loop(url, worker="loop-w", poll_interval=0.05)
    assert completed == 3
    assert client.settled(sweep)


def test_dead_server_raises_broker_down_taxonomy():
    with pytest.raises(BrokerUnavailableError) as err:
        HTTPBroker("http://127.0.0.1:1", timeout=0.5, retries=1,
                   cooldown=0.2)
    assert state_of(str(err.value)) == BROKER_DOWN


def test_run_tasks_degrades_to_pool_on_dead_broker():
    logs = []
    out = run_tasks(double, [5, 6], jobs=1, backend="broker",
                    broker_dir="http://127.0.0.1:1", log=logs.append)
    assert out == [10, 12]
    assert any("single-host pool" in line for line in logs)


# -- idempotency -------------------------------------------------------------


def test_retried_mutation_replays_not_reexecutes(served):
    """Sending the same Idempotency-Key twice must return the recorded
    response, not run the mutation again: the second claim replay hands
    back the same lease instead of double-leasing a second task."""
    import json
    import urllib.request

    _server, url, _directory = served
    client = _fast_client(url)
    client.enqueue(double, [1, 2])

    def post(path, payload, key):
        req = urllib.request.Request(
            url + path, data=json.dumps(payload).encode(), method="POST"
        )
        req.add_header("Idempotency-Key", key)
        with urllib.request.urlopen(req, timeout=2.0) as resp:
            return json.loads(resp.read().decode())

    first = post("/api/claim", {"worker": "w"}, "idem-abc")
    replay = post("/api/claim", {"worker": "w"}, "idem-abc")
    assert replay == first
    fresh = post("/api/claim", {"worker": "w"}, "idem-def")
    assert fresh["lease"]["key"] != first["lease"]["key"]


# -- auth --------------------------------------------------------------------


def test_unauthenticated_request_rejected_401(tmp_path):
    server, url = _serve(tmp_path / "q", token="sekrit")
    try:
        with pytest.raises(BrokerError) as err:
            _fast_client(url)
        assert "401" in str(err.value)
    finally:
        server.shutdown()
        server.server_close()


def test_bearer_token_admits_and_bad_token_rejected(tmp_path):
    server, url = _serve(tmp_path / "q", token="sekrit")
    try:
        good = _fast_client(url, token="sekrit")
        sweep = good.enqueue(double, [1])
        assert good.counts(sweep)["pending"] == 1
        with pytest.raises(BrokerError) as err:
            _fast_client(url, token="wrong")
        assert "401" in str(err.value)
    finally:
        server.shutdown()
        server.server_close()


def test_readonly_server_rejects_mutations_403(tmp_path):
    server, url = _serve(tmp_path / "q", readonly=True)
    try:
        client = _fast_client(url)
        assert client.readonly is True
        assert client.sweeps() == []  # reads stay open
        with pytest.raises(BrokerError) as err:
            client.enqueue(double, [1])
        assert "403" in str(err.value)
    finally:
        server.shutdown()
        server.server_close()


# -- circuit breaker ---------------------------------------------------------


def test_breaker_one_timeout_per_cooldown_window(served):
    """Acceptance criterion: once the server is gone, exactly one call
    pays the network probe per cooldown window — every other call fails
    instantly off the open breaker."""
    server, url, _directory = served
    client = HTTPBroker(url, timeout=0.5, retries=1, cooldown=30.0)
    server.shutdown()
    server.server_close()

    with pytest.raises(BrokerUnavailableError):
        client.counts()  # pays the probe, trips the breaker
    start = time.monotonic()
    for _ in range(20):
        with pytest.raises(BrokerUnavailableError) as err:
            client.counts()
        assert "circuit breaker" in str(err.value)
    assert time.monotonic() - start < 0.5  # no network was touched
    assert client.breaker_state().startswith("open")


def test_breaker_closes_after_cooldown_and_recovers(tmp_path):
    server, url = _serve(tmp_path / "q", lease_ttl=5)
    host, port = server.server_address[:2]
    client = HTTPBroker(url, timeout=0.5, retries=1, cooldown=0.3)
    server.shutdown()
    server.server_close()
    with pytest.raises(BrokerUnavailableError):
        client.counts()
    # Restart on the same port; the breaker re-probes after cooldown.
    server2, _url2 = _serve(tmp_path / "q", host=host, port=port,
                            lease_ttl=5)
    try:
        time.sleep(0.4)
        assert client.breaker_state() == "closed"
        assert client.counts()["pending"] == 0
    finally:
        server2.shutdown()
        server2.server_close()


# -- priority ----------------------------------------------------------------


def test_priority_bands_claim_order_and_fifo_within_band(tmp_path):
    """Higher priority claims first; within a band, enqueue (FIFO)
    order is preserved."""
    broker = Broker(tmp_path / "q")
    broker.enqueue(double, [1, 2], labels=["lo-1", "lo-2"], priority=0)
    broker.enqueue(str, ["x", "y"], labels=["hi-1", "hi-2"], priority=5)
    order = []
    while True:
        lease = broker.claim("w")
        if lease is None:
            break
        order.append(lease.label)
        fn, task = lease.load()
        broker.complete(lease, fn(task))
    assert order == ["hi-1", "hi-2", "lo-1", "lo-2"]


def test_priority_over_http_and_resubmission_rerank(served):
    _server, url, _directory = served
    client = _fast_client(url)
    low = client.enqueue(double, [1], priority=0)
    high = client.enqueue(str, ["a"], priority=3)
    assert client.claim("w").sweep == high
    # Resubmitting an existing sweep with a new priority re-ranks it.
    boosted = client.enqueue(double, [1], priority=9)
    assert boosted == low
    lease = client.claim("w2")
    assert lease.sweep == low


def test_priority_env_default(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SWEEP_PRIORITY", "4")
    broker = Broker(tmp_path / "q")
    broker.enqueue(double, [1])
    monkeypatch.delenv("REPRO_SWEEP_PRIORITY")
    broker.enqueue(str, ["x"])
    lease = broker.claim("w")
    fn, _task = lease.load()
    assert fn is double  # priority-4 sweep claims before priority-0


# -- status surfaces ---------------------------------------------------------


def test_http_status_render_and_sessions(served):
    from repro.experiments.__main__ import _render_status

    _server, url, _directory = served
    assert "empty broker" in _render_status(url)
    run_tasks(double, [1, 2], jobs=1, backend="broker", broker_dir=url)
    text = _render_status(url)
    assert "2/2 done" in text
    assert "recent sessions:" in text


def test_http_bless_and_golden_diff(served):
    _server, url, _directory = served
    run_tasks(double, [1, 2], jobs=1, backend="broker", broker_dir=url)
    client = _fast_client(url)
    out = client.bless_all()
    assert sum(count for _s, _f, count in out["blessed"]) == 2
    sweep = client.sweeps()[0][0]
    info = client.diff_info(sweep)
    assert info["show"] and "match golden" in info["text"]


def test_lease_lost_over_http_maps_to_exception(served):
    _server, url, directory = served
    client = _fast_client(url)
    client.enqueue(double, [1])
    lease = client.claim("w1")
    # Another path completes the task; the heartbeat must now 409.
    fs = Broker(directory)
    fs.reclaim_expired(now=time.time() + 3600)  # lease expired
    done = fs.claim("thief", now=time.time() + 7200)  # past the backoff
    fn, task = done.load()
    fs.complete(done, fn(task))
    with pytest.raises(LeaseLostError):
        client.heartbeat(lease)
