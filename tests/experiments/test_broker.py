"""Sweep-broker tests: the claim/lease protocol and results DB.

Covers the :class:`~repro.experiments.broker.Broker` state machine
(idempotent enqueue, atomic claims, lease expiry and reclamation,
exponential backoff, poison-task quarantine, idempotent completion),
the :func:`~repro.experiments.broker.worker_loop` drain semantics, the
golden-baseline :class:`~repro.experiments.results_db.ResultsDB`, and
the harness knobs that route ``run_tasks`` through the broker backend.

Every protocol test injects ``now=`` timestamps instead of sleeping,
so lease expiry and backoff windows are exercised deterministically.
The genuinely concurrent scenarios (real worker processes, SIGKILL)
live in ``test_broker_races.py``.
"""

import hashlib
import pickle

import pytest

from repro.errors import BrokerError, ExperimentError, LeaseLostError
from repro.experiments import harness
from repro.experiments.broker import (
    BACKOFF_BASE_ENV,
    BROKER_DIR_ENV,
    Broker,
    LEASE_TTL_ENV,
    task_key,
    worker_loop,
)
from repro.experiments.harness import run_tasks
from repro.experiments.results_db import ResultsDB, format_diff


# Module level so broker payloads can pickle them by reference.
def _square(task):
    return task * task


def _boom(task):
    raise ValueError(f"task {task} exploded")


def _flaky_square(task):
    """Fails on the first attempt per task, succeeds after (the marker
    directory arrives curried into the task tuple)."""
    import pathlib

    value, marker_dir = task
    marker = pathlib.Path(marker_dir) / f"tried-{value}"
    if not marker.exists():
        marker.write_text("1")
        raise RuntimeError(f"transient failure on {value}")
    return value * value


# -- enqueue ----------------------------------------------------------------


def test_enqueue_is_idempotent(tmp_path):
    broker = Broker(tmp_path)
    first = broker.enqueue(_square, [1, 2, 3])
    again = broker.enqueue(_square, [1, 2, 3])
    assert first == again
    assert broker.counts(first) == {
        "pending": 3, "leased": 0, "done": 0, "quarantined": 0,
    }
    assert len(broker.sweeps()) == 1


def test_enqueue_preserves_progress(tmp_path):
    broker = Broker(tmp_path)
    sweep = broker.enqueue(_square, [1, 2])
    lease = broker.claim("w1")
    broker.complete(lease, 1)
    broker.enqueue(_square, [1, 2])  # resubmission of the same sweep
    counts = broker.counts(sweep)
    assert counts["done"] == 1 and counts["pending"] == 1


def test_sweep_id_depends_on_content(tmp_path):
    broker = Broker(tmp_path)
    assert broker.enqueue(_square, [1, 2]) != broker.enqueue(_square, [1, 3])
    # Traced-ness changes the result shape, so the sweep identity too.
    assert broker.enqueue(_square, [1, 2]) != broker.enqueue(
        _square, [1, 2], traced=True
    )


def test_task_key_is_content_addressed():
    assert task_key(_square, 5) == task_key(_square, 5)
    assert task_key(_square, 5) != task_key(_square, 6)
    assert task_key(_square, 5) != task_key(_boom, 5)


def test_label_count_mismatch_rejected(tmp_path):
    with pytest.raises(BrokerError, match="labels"):
        Broker(tmp_path).enqueue(_square, [1, 2], labels=["only-one"])


def test_unusable_directory_raises_broker_error():
    with pytest.raises(BrokerError, match="cannot open broker directory"):
        Broker("/proc/definitely/not/writable")


# -- claim / lease / reclaim ------------------------------------------------


def test_claim_runs_in_index_order_and_drains(tmp_path):
    broker = Broker(tmp_path)
    broker.enqueue(_square, [7, 8], labels=["a", "b"])
    first = broker.claim("w1")
    second = broker.claim("w1")
    assert (first.label, second.label) == ("a", "b")
    assert first.attempt == 1
    assert broker.claim("w1") is None  # everything leased out


def test_claim_reports_payload(tmp_path):
    broker = Broker(tmp_path)
    broker.enqueue(_square, [7])
    fn, task = broker.claim("w1").load()
    assert fn is _square and task == 7


def test_lease_expiry_race_is_safe(tmp_path):
    """Two workers hold the "same" task near TTL expiry: the slow one's
    heartbeat fails, and whichever completion lands second dedupes."""
    broker = Broker(tmp_path, lease_ttl=10.0, backoff_base=0.0)
    sweep = broker.enqueue(_square, [7])
    slow = broker.claim("slow", now=0.0)
    # Before expiry nothing is offerable; after it, the claim reclaims
    # and re-leases in one transaction.
    assert broker.claim("fast", now=5.0) is None
    fast = broker.claim("fast", now=11.0)
    assert fast is not None and fast.attempt == 2
    with pytest.raises(LeaseLostError):
        broker.heartbeat(slow, now=12.0)
    assert broker.complete(fast, 49) is True
    assert broker.complete(slow, 49) is False  # late completion dedupes
    assert broker.replay(sweep) == {0: 49}
    assert broker.settled(sweep)


def test_reclaim_expired_backs_off_then_quarantines(tmp_path):
    broker = Broker(tmp_path, lease_ttl=10.0, max_attempts=2, backoff_base=4.0)
    sweep = broker.enqueue(_square, [7], labels=["t"])
    broker.claim("w1", now=0.0)
    reclaimed = broker.reclaim_expired(now=20.0)
    assert reclaimed == [(sweep, 0, "t", "pending")]
    # Re-offer backs off: 4.0 * 2**(1-1) past the reclaim instant.
    assert broker.claim("w2", now=21.0) is None
    lease = broker.claim("w2", now=25.0)
    assert lease.attempt == 2
    # Second expiry exhausts the budget: quarantined, with the dead
    # worker blamed in the reason.
    assert broker.reclaim_expired(now=40.0) == [(sweep, 0, "t", "quarantined")]
    (entry,) = broker.quarantined(sweep)
    assert entry[2] == "t" and "w2" in entry[4]
    assert broker.settled(sweep)  # quarantine is terminal: sweep settles


def test_fail_backs_off_then_quarantines(tmp_path):
    broker = Broker(tmp_path, max_attempts=2, backoff_base=1.0)
    sweep = broker.enqueue(_boom, [5], labels=["poison"])
    lease = broker.claim("w1", now=0.0)
    assert broker.fail(lease, ValueError("nope"), now=1.0) == "pending"
    assert broker.claim("w1", now=1.5) is None  # inside the backoff window
    lease = broker.claim("w1", now=3.0)
    assert lease.attempt == 2
    assert broker.fail(lease, ValueError("nope"), now=4.0) == "quarantined"
    (entry,) = broker.quarantined(sweep)
    assert "ValueError: nope" in entry[4]


def test_fail_never_touches_a_reassigned_lease(tmp_path):
    """A worker failing after its lease was reclaimed and re-leased
    must not clobber the new holder's live attempt."""
    broker = Broker(tmp_path, lease_ttl=10.0, backoff_base=0.0)
    broker.enqueue(_square, [7])
    old = broker.claim("old", now=0.0)
    new = broker.claim("new", now=11.0)  # reclaim + re-lease
    assert broker.fail(old, RuntimeError("late"), now=12.0) == "leased"
    broker.heartbeat(new, now=12.0)  # still alive
    assert broker.complete(new, 49) is True


def test_requeue_quarantined_resets_budget(tmp_path):
    broker = Broker(tmp_path, max_attempts=1)
    sweep = broker.enqueue(_square, [7])
    lease = broker.claim("w1", now=0.0)
    broker.fail(lease, ValueError("once"), now=1.0)
    assert broker.counts(sweep)["quarantined"] == 1
    assert broker.requeue_quarantined(sweep) == 1
    lease = broker.claim("w1", now=2.0)
    assert lease is not None and lease.attempt == 1  # fresh budget


def test_active_workers_tracks_live_leases(tmp_path):
    broker = Broker(tmp_path, lease_ttl=10.0)
    broker.enqueue(_square, [1, 2])
    broker.claim("alpha", now=0.0)
    broker.claim("beta", now=0.0)
    assert broker.active_workers(now=5.0) == ["alpha", "beta"]
    assert broker.active_workers(now=11.0) == []


# -- completion / replay ----------------------------------------------------


def test_duplicate_content_computed_once(tmp_path):
    broker = Broker(tmp_path)
    sweep = broker.enqueue(_square, [3, 4, 3], labels=["a", "b", "a2"])
    done = 0
    while (lease := broker.claim("w1")) is not None:
        broker.complete(lease, _square(lease.load()[1]))
        done += 1
    assert done == 2  # the duplicate task never needed a claim
    assert broker.replay(sweep) == {0: 9, 1: 16, 2: 9}


def test_replay_verifies_digests(tmp_path):
    broker = Broker(tmp_path)
    sweep = broker.enqueue(_square, [3, 4])
    while (lease := broker.claim("w1")) is not None:
        broker.complete(lease, _square(lease.load()[1]))
    (victim,) = [p for p in broker.results_dir.iterdir() if "-" in p.name][:1]
    payload = bytearray(victim.read_bytes())
    payload[len(payload) // 2] ^= 0x40
    victim.write_bytes(bytes(payload))
    # The rotted result is absent from replay, never returned wrong.
    assert len(broker.replay(sweep)) == 1


def test_drop_results_forces_recompute(tmp_path):
    broker = Broker(tmp_path)
    sweep = broker.enqueue(_square, [3])
    broker.complete(broker.claim("w1"), 9)
    assert broker.drop_results(sweep) == 1
    assert broker.replay(sweep) == {}
    assert broker.counts(sweep)["pending"] == 1


def test_events_audit_trail(tmp_path):
    broker = Broker(tmp_path, max_attempts=1)
    sweep = broker.enqueue(_square, [1, 2])
    broker.complete(broker.claim("w1"), 1)
    broker.fail(broker.claim("w1"), ValueError("x"))
    kinds = [row[1] for row in broker.events(sweep)]
    assert kinds == ["enqueue", "claim", "complete", "claim", "quarantine"]


# -- worker loop ------------------------------------------------------------


def test_worker_loop_drains_queue(tmp_path):
    broker = Broker(tmp_path)
    sweep = broker.enqueue(_square, [2, 3, 4])
    completed = worker_loop(tmp_path, worker="w1", lease_ttl=5.0)
    assert completed == 3
    assert broker.replay(sweep) == {0: 4, 1: 9, 2: 16}


def test_worker_loop_quarantines_poison_and_finishes_sweep(tmp_path):
    """The acceptance scenario: an always-crashing task is quarantined
    after its retry budget while the rest of the sweep completes."""
    broker = Broker(tmp_path, max_attempts=2, backoff_base=0.0)
    good = broker.enqueue(_square, [5, 6], labels=["g5", "g6"])
    poison = broker.enqueue(_boom, [1], labels=["poison"])
    logs = []
    worker_loop(
        tmp_path, worker="w1", lease_ttl=5.0, max_attempts=2,
        backoff_base=0.0, log=logs.append,
    )
    assert broker.replay(good) == {0: 25, 1: 36}
    (entry,) = broker.quarantined(poison)
    assert entry[2] == "poison" and "exploded" in entry[4]
    assert broker.settled(good) and broker.settled(poison)
    assert any("failed" in line for line in logs)


def test_worker_loop_retries_transient_failures(tmp_path):
    broker = Broker(tmp_path, backoff_base=0.0)
    tasks = [(2, str(tmp_path)), (3, str(tmp_path))]
    sweep = broker.enqueue(_flaky_square, tasks, labels=["f2", "f3"])
    worker_loop(tmp_path, worker="w1", lease_ttl=5.0, backoff_base=0.0)
    assert broker.replay(sweep) == {0: 4, 1: 9}


def test_worker_loop_max_tasks(tmp_path):
    broker = Broker(tmp_path)
    broker.enqueue(_square, [1, 2, 3])
    assert worker_loop(tmp_path, worker="w1", max_tasks=2) == 2
    assert broker.counts()["pending"] == 1


# -- environment knobs ------------------------------------------------------


def test_lease_ttl_env(tmp_path, monkeypatch):
    monkeypatch.setenv(LEASE_TTL_ENV, "7.5")
    assert Broker(tmp_path).lease_ttl == 7.5
    monkeypatch.setenv(LEASE_TTL_ENV, "junk")
    with pytest.raises(BrokerError, match=LEASE_TTL_ENV):
        Broker(tmp_path)


def test_backoff_base_env(tmp_path, monkeypatch):
    monkeypatch.setenv(BACKOFF_BASE_ENV, "0.125")
    assert Broker(tmp_path).backoff_base == 0.125
    monkeypatch.setenv(BACKOFF_BASE_ENV, "junk")
    with pytest.raises(BrokerError, match=BACKOFF_BASE_ENV):
        Broker(tmp_path)


def test_harness_timeout_and_retry_envs(monkeypatch):
    monkeypatch.setenv(harness.TASK_TIMEOUT_ENV, "12.5")
    monkeypatch.setenv(harness.TASK_RETRIES_ENV, "4")
    assert harness.resolve_timeout(None) == 12.5
    assert harness.resolve_retries(None) == 4
    # Explicit arguments beat the environment.
    assert harness.resolve_timeout(3.0) == 3.0
    assert harness.resolve_retries(0) == 0
    monkeypatch.setenv(harness.TASK_TIMEOUT_ENV, "junk")
    with pytest.raises(ExperimentError):
        harness.resolve_timeout(None)


def test_broker_workers_env(monkeypatch):
    monkeypatch.setenv(harness.BROKER_WORKERS_ENV, "0")
    assert harness._broker_local_workers(None, total=8) == 0
    monkeypatch.setenv(harness.BROKER_WORKERS_ENV, "3")
    assert harness._broker_local_workers(None, total=8) == 3
    monkeypatch.delenv(harness.BROKER_WORKERS_ENV)
    # Without the override, local workers never exceed the task count.
    assert harness._broker_local_workers(4, total=2) == 2


# -- run_tasks broker backend ------------------------------------------------


def test_run_tasks_broker_backend_matches_pool(tmp_path):
    out = run_tasks(
        _square, [1, 2, 3], jobs=1, backend="broker",
        broker_dir=tmp_path / "q",
    )
    assert out == [1, 4, 9]


def test_run_tasks_broker_replays_instantly(tmp_path):
    run_tasks(_square, [1, 2], jobs=1, backend="broker", broker_dir=tmp_path)
    logs = []
    # _boom in place of _square: same content keys would recompute if
    # replay missed (different fn -> different keys, so use _square and
    # count the "already complete" log instead).
    again = run_tasks(
        _square, [1, 2], jobs=1, backend="broker", broker_dir=tmp_path,
        log=logs.append,
    )
    assert again == [1, 4]
    assert any("already complete" in line for line in logs)


def test_run_tasks_broker_env_routing(tmp_path, monkeypatch):
    monkeypatch.setenv(BROKER_DIR_ENV, str(tmp_path / "q"))
    assert run_tasks(_square, [2], jobs=1) == [4]
    assert (tmp_path / "q" / "queue.db").exists()


def test_run_tasks_broker_degrades_to_pool(tmp_path, monkeypatch):
    logs = []
    out = run_tasks(
        _square, [1, 2], jobs=1, backend="broker",
        broker_dir="/proc/definitely/not/writable", log=logs.append,
    )
    assert out == [1, 4]
    assert any("broker unavailable" in line for line in logs)


def test_run_tasks_broker_rescues_quarantined_serially(tmp_path):
    """Poison tasks get one final serial in-parent attempt, so genuine
    poison surfaces its real traceback in the caller."""
    with pytest.raises(ValueError, match="exploded"):
        run_tasks(
            _boom, [1], jobs=1, backend="broker", broker_dir=tmp_path,
            retries=1,
        )


def test_run_tasks_rejects_unknown_backend(tmp_path):
    with pytest.raises(ExperimentError, match="backend"):
        run_tasks(_square, [1], jobs=1, backend="carrier-pigeon")


# -- results DB / golden baseline -------------------------------------------


def test_record_session_idempotent(tmp_path):
    db = ResultsDB.for_broker(tmp_path)
    first = db.record_session("sweep-abc", "m.fn", 4)
    again = db.record_session("sweep-abc", "m.fn", 4)
    assert first == again
    assert len(db.sessions()) == 1


def _sha(value) -> str:
    return hashlib.sha256(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


def test_bless_and_diff_taxonomy(tmp_path):
    db = ResultsDB.for_broker(tmp_path)
    rows = [
        ("a", "key-a", _sha(1)),
        ("b", "key-b", _sha(2)),
        ("c", "key-c", _sha(3)),
    ]
    assert db.bless("m.fn", rows, sweep="sweep-1") == 3
    current = [
        ("a", "key-a", _sha(1)),      # matched
        ("b", "key-b", _sha(99)),     # result drift: same task, new sha
        ("c", "key-c2", _sha(3)),     # task drift: the point changed
        ("d", "key-d", _sha(4)),      # novel
    ]
    diff = db.diff("m.fn", current)
    assert diff.matched == ["a"]
    assert diff.drifted == [("b", _sha(2), _sha(99))]
    assert diff.task_changed == [("c", "key-c", "key-c2")]
    assert diff.novel == ["d"]
    assert diff.missing == []
    assert not diff.clean and diff.baselined
    text = format_diff(diff)
    assert "DRIFTED" in text and "task definition changed" in text


def test_diff_reports_missing_labels(tmp_path):
    db = ResultsDB.for_broker(tmp_path)
    db.bless("m.fn", [("a", "k", _sha(1)), ("b", "k2", _sha(2))])
    diff = db.diff("m.fn", [("a", "k", _sha(1))])
    assert diff.missing == ["b"] and diff.clean


def test_diff_without_baseline_is_novel_only(tmp_path):
    db = ResultsDB.for_broker(tmp_path)
    diff = db.diff("m.fn", [("a", "k", _sha(1))])
    assert not diff.baselined and diff.novel == ["a"]
    assert "no golden baseline" in format_diff(diff)


def test_broker_rows_feed_golden_diff(tmp_path):
    """End to end: a drained sweep blesses cleanly and re-diffs clean."""
    broker = Broker(tmp_path)
    sweep = broker.enqueue(_square, [2, 3], labels=["p2", "p3"])
    worker_loop(tmp_path, worker="w1")
    db = ResultsDB.for_broker(tmp_path)
    rows = broker.result_rows(sweep)
    db.bless("tests._square", rows, sweep=sweep)
    diff = db.diff("tests._square", rows)
    assert diff.clean and len(diff.matched) == 2
