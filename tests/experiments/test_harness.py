"""Unit tests for the parallel experiment harness."""

import multiprocessing
import os
import signal
import time

import pytest

from repro.errors import ExperimentError, TaskTimeoutError
from repro.experiments.harness import derive_seed, run_tasks, worker_count


# Module level so the parallel path can pickle them by reference.
def _square(task):
    return task * task


def _seeded_pair(task):
    base, label = task
    return (label, derive_seed(base, label))


def _fail_on_three(task):
    if task == 3:
        raise ValueError("task three is broken")
    return task


def _sleep_if_flagged(task):
    """Hang on the first attempt, return on the retry (flag file)."""
    value, flag_path = task
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as fh:
            fh.write("first attempt")
        time.sleep(30.0)
    return value


def _sleep_forever(task):
    time.sleep(30.0)
    return task


def _die_in_worker(task):
    """SIGKILL the pool worker; return normally when rerun in-process."""
    if task == "victim" and multiprocessing.current_process().name != (
        "MainProcess"
    ):
        os.kill(os.getpid(), signal.SIGKILL)
    return f"done:{task}"


# -- worker_count ---------------------------------------------------------------


def test_explicit_jobs_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert worker_count(3) == 3


def test_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert worker_count() == 5


def test_env_must_be_integer(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ExperimentError):
        worker_count()


def test_default_is_at_least_one(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert worker_count() >= 1


@pytest.mark.parametrize("jobs", [0, -4])
def test_nonpositive_clamps_to_one(jobs):
    assert worker_count(jobs) == 1


# -- derive_seed ----------------------------------------------------------------


def test_derive_seed_deterministic():
    assert derive_seed(101, "fig6", 0.05) == derive_seed(101, "fig6", 0.05)


def test_derive_seed_varies_with_parts():
    seeds = {
        derive_seed(101),
        derive_seed(101, "fig6"),
        derive_seed(101, "fig6", 0.05),
        derive_seed(101, "fig6", 0.08),
        derive_seed(102, "fig6", 0.05),
    }
    assert len(seeds) == 5


def test_derive_seed_fits_in_63_bits():
    for part in range(50):
        assert 0 <= derive_seed(0, part) < 2**63


# -- run_tasks ------------------------------------------------------------------


def test_serial_preserves_order():
    assert run_tasks(_square, [3, 1, 4, 1, 5], jobs=1) == [9, 1, 16, 1, 25]


def test_empty_tasks():
    assert run_tasks(_square, [], jobs=4) == []


def test_serial_logs_labels():
    lines = []
    run_tasks(
        _square, [2, 3], jobs=1, log=lines.append, labels=["two", "three"]
    )
    assert lines == ["[1/2] two", "[2/2] three"]


def test_label_count_mismatch_rejected():
    with pytest.raises(ExperimentError):
        run_tasks(_square, [1, 2], jobs=1, labels=["only-one"])


def test_parallel_matches_serial():
    tasks = list(range(13))
    assert run_tasks(_square, tasks, jobs=4) == run_tasks(
        _square, tasks, jobs=1
    )


def test_parallel_logs_every_task():
    lines = []
    run_tasks(_square, [1, 2, 3, 4, 5], jobs=2, log=lines.append)
    assert len(lines) == 5
    assert sorted(line.split("]")[0] for line in lines) == [
        f"[{i}/5" for i in range(1, 6)
    ]


def test_parallel_seed_derivation_matches_serial():
    tasks = [(101, f"point-{i}") for i in range(8)]
    assert run_tasks(_seeded_pair, tasks, jobs=3) == run_tasks(
        _seeded_pair, tasks, jobs=1
    )


@pytest.mark.parametrize("jobs", [1, 4])
def test_worker_exception_propagates(jobs):
    with pytest.raises(ValueError, match="task three"):
        run_tasks(_fail_on_three, [1, 2, 3, 4], jobs=jobs)


def test_env_drives_run_tasks(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    assert run_tasks(_square, [5, 6], log=None) == [25, 36]


# -- timeouts, retries, fallback ------------------------------------------------


def test_invalid_timeout_and_retries_rejected():
    with pytest.raises(ExperimentError, match="timeout"):
        run_tasks(_square, [1], jobs=1, timeout=0.0)
    with pytest.raises(ExperimentError, match="retries"):
        run_tasks(_square, [1], jobs=1, retries=-1)


def test_timeout_raises_when_retries_exhausted():
    # Two tasks so the pool path runs (a single task collapses to the
    # serial path, where a hung call cannot be interrupted).
    with pytest.raises(TaskTimeoutError, match="exceeded"):
        run_tasks(
            _sleep_forever,
            ["hung-a", "hung-b"],
            jobs=2,
            timeout=0.3,
            labels=["hung-a", "hung-b"],
        )


def test_timeout_retry_recovers(tmp_path):
    """First attempt hangs; the resubmitted attempt returns promptly."""
    flag = str(tmp_path / "attempted.flag")
    steady = str(tmp_path / "steady.flag")
    open(steady, "w").close()  # pre-flagged: returns immediately
    lines = []
    results = run_tasks(
        _sleep_if_flagged,
        [(7, flag), (8, steady)],
        jobs=2,
        timeout=1.0,
        retries=2,
        log=lines.append,
        labels=["flaky", "steady"],
    )
    assert results == [7, 8]
    assert any("retry" in line for line in lines)


def test_timeout_leaves_fast_tasks_untouched():
    results = run_tasks(_square, list(range(8)), jobs=4, timeout=60.0)
    assert results == [i * i for i in range(8)]


def test_dead_worker_falls_back_to_serial():
    """A SIGKILLed worker breaks the pool; the sweep completes serially."""
    tasks = ["a", "victim", "b", "c"]
    lines = []
    results = run_tasks(_die_in_worker, tasks, jobs=2, log=lines.append)
    assert results == [f"done:{task}" for task in tasks]
    assert any("serially" in line for line in lines)


# -- straggler reclamation --------------------------------------------------


def test_straggler_is_killed_and_pool_rebuilt(tmp_path):
    """A worker hung past the deadline is SIGKILLed (its slot would
    otherwise stay occupied for the full 30 s sleep) and the pool is
    rebuilt for the retry."""
    flag = str(tmp_path / "straggler.flag")
    fast = str(tmp_path / "fast.flag")
    open(fast, "w").close()  # pre-flagged: returns immediately
    lines = []
    start = time.monotonic()
    results = run_tasks(
        _sleep_if_flagged,
        [(1, flag), (2, fast), (3, fast)],
        jobs=2,
        timeout=1.0,
        retries=1,
        log=lines.append,
        labels=["straggler", "fast-a", "fast-b"],
    )
    assert results == [1, 2, 3]
    assert any("killed straggling worker" in line for line in lines)
    assert any("rebuilding worker pool" in line for line in lines)
    # Reclaimed at the deadline, nowhere near the straggler's 30 s sleep.
    assert time.monotonic() - start < 20.0


# -- spawn-started workers --------------------------------------------------


def _default_cache_entries(task):
    from repro.tuning.pipeline import default_cache

    return default_cache().stats()["entries"]


def test_explicit_fork_start_method(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    tasks = list(range(9))
    assert run_tasks(_square, tasks, jobs=3, start_method="fork") == [
        i * i for i in tasks
    ]


def test_spawn_workers_receive_warm_cache():
    """Spawned workers don't inherit memory; the harness ships the
    parent's pipeline-cache entries through the pool initializer."""
    from repro.tuning.pipeline import default_cache, tune_program
    from tests.conftest import make_phased_program

    program, spec = make_phased_program(outer=4)
    tune_program(program, spec=spec)  # warm the process-wide cache
    parent_entries = default_cache().stats()["entries"]
    assert parent_entries > 0
    counts = run_tasks(
        _default_cache_entries, [0, 1, 2], jobs=2, start_method="spawn"
    )
    assert all(count >= parent_entries for count in counts)
