"""Unit tests for the parallel experiment harness."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import derive_seed, run_tasks, worker_count


# Module level so the parallel path can pickle them by reference.
def _square(task):
    return task * task


def _seeded_pair(task):
    base, label = task
    return (label, derive_seed(base, label))


def _fail_on_three(task):
    if task == 3:
        raise ValueError("task three is broken")
    return task


# -- worker_count ---------------------------------------------------------------


def test_explicit_jobs_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert worker_count(3) == 3


def test_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert worker_count() == 5


def test_env_must_be_integer(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ExperimentError):
        worker_count()


def test_default_is_at_least_one(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert worker_count() >= 1


@pytest.mark.parametrize("jobs", [0, -4])
def test_nonpositive_clamps_to_one(jobs):
    assert worker_count(jobs) == 1


# -- derive_seed ----------------------------------------------------------------


def test_derive_seed_deterministic():
    assert derive_seed(101, "fig6", 0.05) == derive_seed(101, "fig6", 0.05)


def test_derive_seed_varies_with_parts():
    seeds = {
        derive_seed(101),
        derive_seed(101, "fig6"),
        derive_seed(101, "fig6", 0.05),
        derive_seed(101, "fig6", 0.08),
        derive_seed(102, "fig6", 0.05),
    }
    assert len(seeds) == 5


def test_derive_seed_fits_in_63_bits():
    for part in range(50):
        assert 0 <= derive_seed(0, part) < 2**63


# -- run_tasks ------------------------------------------------------------------


def test_serial_preserves_order():
    assert run_tasks(_square, [3, 1, 4, 1, 5], jobs=1) == [9, 1, 16, 1, 25]


def test_empty_tasks():
    assert run_tasks(_square, [], jobs=4) == []


def test_serial_logs_labels():
    lines = []
    run_tasks(
        _square, [2, 3], jobs=1, log=lines.append, labels=["two", "three"]
    )
    assert lines == ["[1/2] two", "[2/2] three"]


def test_label_count_mismatch_rejected():
    with pytest.raises(ExperimentError):
        run_tasks(_square, [1, 2], jobs=1, labels=["only-one"])


def test_parallel_matches_serial():
    tasks = list(range(13))
    assert run_tasks(_square, tasks, jobs=4) == run_tasks(
        _square, tasks, jobs=1
    )


def test_parallel_logs_every_task():
    lines = []
    run_tasks(_square, [1, 2, 3, 4, 5], jobs=2, log=lines.append)
    assert len(lines) == 5
    assert sorted(line.split("]")[0] for line in lines) == [
        f"[{i}/5" for i in range(1, 6)
    ]


def test_parallel_seed_derivation_matches_serial():
    tasks = [(101, f"point-{i}") for i in range(8)]
    assert run_tasks(_seeded_pair, tasks, jobs=3) == run_tasks(
        _seeded_pair, tasks, jobs=1
    )


@pytest.mark.parametrize("jobs", [1, 4])
def test_worker_exception_propagates(jobs):
    with pytest.raises(ValueError, match="task three"):
        run_tasks(_fail_on_three, [1, 2, 3, 4], jobs=jobs)


def test_env_drives_run_tasks(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    assert run_tasks(_square, [5, 6], log=None) == [25, 36]
