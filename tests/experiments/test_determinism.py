"""Parallel-vs-serial determinism regression (the harness contract).

Every experiment point is a pure function of its task tuple, so running
a sweep through the process pool must reproduce the serial results *bit
for bit* — same floats, not approximately-equal floats.  These tests pin
that for a throughput sweep (Figure 6) and a per-benchmark fan-out
(Table 1) at quick scale.
"""

import numpy as np

from repro.experiments import ExperimentConfig, fig6, table1

QUICK = ExperimentConfig(slots=6, interval=40.0, seed=101)


def test_fig6_parallel_bit_identical(monkeypatch):
    deltas = (0.02, 0.08, 0.18)
    monkeypatch.setenv("REPRO_JOBS", "1")
    serial = fig6.run(QUICK, deltas=deltas)
    monkeypatch.setenv("REPRO_JOBS", "4")
    parallel = fig6.run(QUICK, deltas=deltas)
    assert serial.deltas == parallel.deltas
    assert serial.improvements == parallel.improvements  # exact equality
    assert np.array_equal(
        np.asarray(serial.improvements), np.asarray(parallel.improvements)
    )


def test_table1_parallel_bit_identical(monkeypatch):
    benchmarks = ("164.gzip", "172.mgrid", "459.GemsFDTD", "473.astar")
    monkeypatch.setenv("REPRO_JOBS", "1")
    serial = table1.run(benchmarks=benchmarks)
    monkeypatch.setenv("REPRO_JOBS", "4")
    parallel = table1.run(benchmarks=benchmarks)
    assert len(serial.rows) == len(parallel.rows) == len(benchmarks)
    for s, p in zip(serial.rows, parallel.rows):
        assert s.name == p.name
        assert s.switches == p.switches
        assert s.runtime_seconds == p.runtime_seconds  # exact equality
        assert s.total_cycles == p.total_cycles
        assert s.marks == p.marks
