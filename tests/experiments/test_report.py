"""Unit tests for report formatting and experiment configuration."""

import pytest

from repro.experiments.config import TABLE2_VARIANTS, ExperimentConfig
from repro.experiments.report import format_series, format_table, pct
from repro.sim import three_core_amp


def test_format_table_alignment():
    text = format_table(
        ("name", "value"),
        [("a", 1), ("long-name", 22)],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    # All data rows align under the header.
    assert lines[3].startswith("a")
    assert lines[4].startswith("long-name")


def test_format_series():
    text = format_series([1, 2], [0.5, -1.25], "x", "y", title="S")
    assert "+0.50" in text
    assert "-1.25" in text


def test_pct_sign_convention():
    assert pct(35.95) == "+35.95"
    assert pct(-10.349) == "-10.35"


def test_table2_variants_complete():
    assert len(TABLE2_VARIANTS) == 18
    assert sum(1 for v in TABLE2_VARIANTS if v.startswith("BB")) == 12
    assert sum(1 for v in TABLE2_VARIANTS if v.startswith("Int")) == 3
    assert sum(1 for v in TABLE2_VARIANTS if v.startswith("Loop")) == 3


def test_config_with_and_factories():
    config = ExperimentConfig.quick()
    changed = config.with_(seed=7, machine=three_core_amp())
    assert changed.seed == 7
    assert len(changed.resolved_machine()) == 3
    assert config.seed != 7  # Original untouched.
    assert ExperimentConfig.paper().slots == 18
    assert ExperimentConfig.fairness_paper().interval == 800.0


def test_config_runtime_factory():
    config = ExperimentConfig.quick()
    runtime = config.make_runtime()
    assert runtime.ipc_threshold == config.ipc_threshold
    override = config.make_runtime(delta=0.3)
    assert override.ipc_threshold == 0.3


def test_config_strategy_parser():
    config = ExperimentConfig.quick()
    assert config.strategy("Loop[45]").name == "Loop[45]"
