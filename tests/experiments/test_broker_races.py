"""Broker race and chaos tests: real clocks, real processes, SIGKILL.

``test_broker.py`` drives the protocol with injected timestamps; this
file runs the scenarios for real — two workers fighting over a lease
at TTL expiry, a worker SIGKILL'd mid-heartbeat whose task is
reclaimed, the acceptance chaos drill (kill one of two workers
mid-sweep and still finish byte-identical), and a Hypothesis property
test that *any* interleaving of duplicate completions yields one
canonical result set.

Real-clock tests keep every window wide relative to scheduler jitter
(lease TTLs of hundreds of milliseconds, sleeps well past them) so
they stay deterministic on slow CI hosts.
"""

import hashlib
import multiprocessing
import os
import pathlib
import pickle
import signal
import threading
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.broker import Broker, Lease, task_key, worker_loop


# Module level so broker payloads and fork children pickle them by
# reference.
def _square(task):
    return task * task


def _nap_square(task):
    value, seconds = task
    time.sleep(seconds)
    return value * value


def _slow_first_attempt(task):
    """Sleeps forever on the first attempt (to be SIGKILL'd mid-task),
    returns instantly on every later one."""
    value, marker_dir = task
    marker = pathlib.Path(marker_dir) / f"slow-{value}"
    if not marker.exists():
        marker.write_text("1")
        time.sleep(120.0)
    return value * value


def _worker_process(directory, lease_ttl):
    worker_loop(directory, lease_ttl=lease_ttl, backoff_base=0.0)


# -- real-clock lease race --------------------------------------------------


def test_two_workers_race_one_lease_at_expiry(tmp_path):
    """Worker A claims and stalls (no heartbeat); worker B claims the
    same task after the TTL.  Both then complete: exactly one recording
    wins and the replay is canonical."""
    broker = Broker(tmp_path, lease_ttl=0.3, backoff_base=0.0)
    sweep = broker.enqueue(_square, [7])
    stalled = broker.claim("stalled")
    assert broker.claim("rival") is None  # lease still live
    time.sleep(0.5)
    rival = broker.claim("rival")  # expired: reclaimed and re-leased
    assert rival is not None and rival.attempt == 2
    outcomes = [
        broker.complete(rival, 49),
        broker.complete(stalled, 49),  # late, after losing the lease
    ]
    assert outcomes == [True, False]
    assert broker.replay(sweep) == {0: 49}
    assert len(list(broker.results_dir.glob("*.pkl"))) == 1


def test_concurrent_completions_record_exactly_once(tmp_path):
    """Eight threads completing the same content key simultaneously:
    the INSERT OR IGNORE picks exactly one canonical recording."""
    broker = Broker(tmp_path, lease_ttl=5.0)
    sweep = broker.enqueue(_square, [6])
    lease = broker.claim("w0")
    outcomes = []
    lock = threading.Lock()

    def complete(worker):
        dup = Lease(
            lease.sweep, lease.index, lease.key, lease.label,
            lease.payload, 1, lease.deadline, worker,
        )
        recorded = broker.complete(dup, 36)
        with lock:
            outcomes.append(recorded)

    threads = [
        threading.Thread(target=complete, args=(f"w{i}",)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert outcomes.count(True) == 1 and outcomes.count(False) == 7
    assert broker.replay(sweep) == {0: 36}


# -- SIGKILL recovery -------------------------------------------------------


def test_sigkill_mid_heartbeat_task_is_reclaimed(tmp_path):
    """A worker SIGKILL'd while holding a lease (heartbeat thread and
    all) loses it at TTL expiry; the next worker completes the task."""
    broker = Broker(tmp_path, lease_ttl=0.4, backoff_base=0.0)
    sweep = broker.enqueue(
        _slow_first_attempt, [(9, str(tmp_path))], labels=["victim"]
    )
    proc = multiprocessing.Process(
        target=_worker_process, args=(str(tmp_path), 0.4)
    )
    proc.start()
    try:
        deadline = time.time() + 30.0
        while broker.counts(sweep)["leased"] != 1:
            assert time.time() < deadline, "worker never claimed the task"
            time.sleep(0.05)
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.join(timeout=10.0)
    # The dead worker's lease expires; draining in-process reclaims the
    # task (marker file now present, so the retry returns instantly).
    completed = worker_loop(
        tmp_path, worker="rescuer", lease_ttl=0.4, backoff_base=0.0
    )
    assert completed == 1
    assert broker.replay(sweep) == {0: 81}
    assert broker.quarantined(sweep) == []
    kinds = [row[1] for row in broker.events(sweep)]
    assert "reclaim" in kinds


def test_chaos_kill_one_of_two_workers_mid_sweep(tmp_path):
    """The acceptance chaos drill: two workers serve a sweep, one is
    SIGKILL'd mid-run, and the sweep still completes with results
    byte-identical to a serial computation."""
    broker = Broker(tmp_path, lease_ttl=0.8, backoff_base=0.0)
    tasks = [(i, 0.15) for i in range(8)]
    sweep = broker.enqueue(_nap_square, tasks)
    procs = [
        multiprocessing.Process(
            target=_worker_process, args=(str(tmp_path), 0.8)
        )
        for _ in range(2)
    ]
    for proc in procs:
        proc.start()
    try:
        time.sleep(0.4)  # both workers mid-task
        os.kill(procs[0].pid, signal.SIGKILL)
        procs[1].join(timeout=60.0)
        assert not procs[1].is_alive(), "surviving worker never drained"
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=10.0)
    assert broker.settled(sweep)
    assert broker.quarantined(sweep) == []
    expected = {i: value * value for i, (value, _nap) in enumerate(tasks)}
    assert broker.replay(sweep) == expected
    # Byte-identical, not just equal: recorded digests match the
    # serial pickles exactly.
    digests = broker.result_digests(sweep)
    for i, (value, nap) in enumerate(tasks):
        want = hashlib.sha256(
            pickle.dumps(value * value, protocol=pickle.HIGHEST_PROTOCOL)
        ).hexdigest()
        assert digests[repr((value, nap))] == want


# -- property: completion interleavings -------------------------------------


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_any_completion_interleaving_is_canonical(tmp_path_factory, data):
    """Any interleaving of (possibly duplicate) completions from any
    mix of workers yields one canonical result set: exactly one
    recording per content key, and a full, correct replay."""
    tmp_path = tmp_path_factory.mktemp("interleave")
    broker = Broker(tmp_path, lease_ttl=60.0)
    tasks = [1, 2, 3]
    sweep = broker.enqueue(_square, tasks)
    keys = [task_key(_square, task) for task in tasks]
    # Every task completes at least once; beyond that, any number of
    # duplicate completions from either worker, in any order.
    ops = list(enumerate(tasks)) + data.draw(
        st.lists(
            st.sampled_from(list(enumerate(tasks))), min_size=0, max_size=9
        )
    )
    order = data.draw(st.permutations(ops))
    workers = data.draw(
        st.lists(
            st.sampled_from(["w1", "w2"]),
            min_size=len(order),
            max_size=len(order),
        )
    )
    recorded = 0
    for (idx, task), worker in zip(order, workers):
        dup = Lease(
            sweep, idx, keys[idx], repr(task), b"", 1, time.time() + 60,
            worker,
        )
        recorded += broker.complete(dup, task * task)
    assert recorded == len(tasks)  # one canonical recording per key
    assert broker.replay(sweep) == {i: t * t for i, t in enumerate(tasks)}
    assert broker.settled(sweep)
    broker.close()
