"""The networked chaos drill: kill -9 the broker *server* mid-sweep.

Two HTTP workers (real processes) serve a sweep through a real broker
server (a real ``python -m repro.experiments serve`` subprocess).  The
server is SIGKILL'd mid-run and restarted on the same port over the
same queue directory.  The workers ride out the outage inside their
grace window and the sweep completes with zero quarantined tasks and
results byte-identical to the same sweep run over a filesystem broker.
"""

import hashlib
import multiprocessing
import os
import pickle
import re
import signal
import subprocess
import sys
import time

from repro.experiments.broker import Broker, worker_loop
from repro.experiments.broker_net import HTTPBroker


def _nap_square(task):
    value, seconds = task
    time.sleep(seconds)
    return value * value


def _net_worker(url):
    # Fast transport knobs so the outage costs polling, not minutes.
    os.environ["REPRO_BROKER_TIMEOUT"] = "2.0"
    os.environ["REPRO_BROKER_RETRIES"] = "1"
    os.environ["REPRO_BROKER_COOLDOWN"] = "0.2"
    os.environ["REPRO_BROKER_GRACE"] = "60"
    worker_loop(url, poll_interval=0.05)


def _spawn_server(directory, port=0):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", "serve",
         str(directory), "--port", str(port)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src",
             "PYTHONUNBUFFERED": "1"},
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
    )
    line = proc.stdout.readline()
    match = re.search(r"(http://[\d.]+:\d+)", line)
    assert match, f"serve never announced a URL: {line!r}"
    return proc, match.group(1)


def test_chaos_kill_server_mid_sweep_byte_identical(tmp_path):
    qdir = tmp_path / "q"
    server, url = _spawn_server(qdir)
    procs = []
    try:
        tasks = [(i, 0.2) for i in range(10)]
        client = HTTPBroker(url, timeout=2.0, retries=2, cooldown=0.2)
        sweep = client.enqueue(_nap_square, tasks)

        procs = [
            multiprocessing.Process(target=_net_worker, args=(url,))
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()

        # Let the sweep get properly underway, then murder the server.
        local = Broker(qdir)  # reads queue.db directly, server or not
        deadline = time.time() + 30.0
        while local.counts(sweep)["done"] < 2:
            assert time.time() < deadline, "sweep never got underway"
            time.sleep(0.05)
        os.kill(server.pid, signal.SIGKILL)
        server.wait(timeout=10.0)
        time.sleep(1.0)  # workers are now polling through the outage
        assert not local.settled(sweep), "outage happened after the end"

        # Restart on the same port over the same queue directory.
        port = int(url.rsplit(":", 1)[1])
        server, url2 = _spawn_server(qdir, port=port)
        assert url2 == url

        for proc in procs:
            proc.join(timeout=60.0)
            assert not proc.is_alive(), "worker never drained the sweep"
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=10.0)
        if server.poll() is None:
            server.kill()
        server.wait(timeout=10.0)

    local = Broker(qdir)
    assert local.settled(sweep)
    assert local.quarantined(sweep) == []
    expected = {i: v * v for i, (v, _nap) in enumerate(tasks)}
    assert local.replay(sweep) == expected

    # Byte-identical to the filesystem backend: same sweep id, same
    # recorded digests, digest == the serial pickle of the value.
    fs = Broker(tmp_path / "fsq")
    fs_sweep = fs.enqueue(_nap_square, tasks)
    assert fs_sweep == sweep
    while True:
        lease = fs.claim("serial")
        if lease is None:
            break
        fn, task = lease.load()
        fs.complete(lease, fn(task))
    assert fs.result_digests(fs_sweep) == local.result_digests(sweep)
    for value, nap in tasks:
        want = hashlib.sha256(
            pickle.dumps(value * value, protocol=pickle.HIGHEST_PROTOCOL)
        ).hexdigest()
        assert local.result_digests(sweep)[repr((value, nap))] == want
