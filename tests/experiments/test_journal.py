"""Durable-sweep journal tests: crash-safe ``run_tasks`` progress.

Covers the :class:`~repro.experiments.journal.RunJournal` record/replay
contract (digest-verified result files, torn-line tolerance, records
salvaged from concurrent-writer interleaving), the ``run_tasks``
integration (journaled tasks
skipped on rerun, pool deaths blamed through pid files, repeat
offenders demoted to serial-in-parent), and the :func:`set_run_root`
auto-journal numbering the ``resume`` CLI verb relies on.
"""

import json
import multiprocessing
import os
import pathlib
import signal

from repro.experiments import harness
from repro.experiments.harness import run_tasks
from repro.experiments.journal import MAX_TASK_CRASHES, RunJournal


# Module level so the parallel path can pickle them by reference.
def _square(task):
    return task * task


def _boom(task):
    raise ValueError(f"task {task} exploded")


def _kill_twice(task):
    """SIGKILL the worker on the first ``MAX_TASK_CRASHES`` attempts.

    Attempts are counted in a marker file so the count survives the
    worker's death; once demoted to serial-in-parent the function runs
    in MainProcess and must *not* kill (that would kill pytest).
    """
    value, marker_dir = task
    if value == "victim" and multiprocessing.current_process().name != (
        "MainProcess"
    ):
        marker = pathlib.Path(marker_dir) / "attempts"
        tries = int(marker.read_text()) if marker.exists() else 0
        marker.write_text(str(tries + 1))
        if tries < MAX_TASK_CRASHES:
            os.kill(os.getpid(), signal.SIGKILL)
    return f"done:{value}"


# -- RunJournal record/replay ---------------------------------------------------


def test_record_and_replay_roundtrip(tmp_path):
    journal = RunJournal(tmp_path / "sweep")
    journal.record(0, "a", {"ipc": 1.5})
    journal.record(2, "c", [1, 2, 3])
    assert journal.completed_results() == {0: {"ipc": 1.5}, 2: [1, 2, 3]}
    # A fresh instance reads the same state back from disk.
    assert RunJournal(tmp_path / "sweep").completed_results() == {
        0: {"ipc": 1.5},
        2: [1, 2, 3],
    }


def test_rerecord_overwrites(tmp_path):
    journal = RunJournal(tmp_path)
    journal.record(0, "a", "first")
    journal.record(0, "a", "second")
    assert journal.completed_results() == {0: "second"}


def test_traced_shape_filtering(tmp_path):
    """Results journaled under tracing carry ``(value, blob)`` wrappers;
    a rerun with the other tracing mode must not see them (wrong type)."""
    journal = RunJournal(tmp_path)
    journal.record(0, "plain", 42, traced=False)
    journal.record(1, "traced", (43, b"blob"), traced=True)
    assert journal.completed_results(traced=False) == {0: 42}
    assert journal.completed_results(traced=True) == {1: (43, b"blob")}


def test_torn_tail_is_tolerated(tmp_path):
    journal = RunJournal(tmp_path)
    journal.record(0, "a", "ok")
    journal.record(1, "b", "gone")
    text = journal.journal_path.read_text()
    lines = text.rstrip("\n").split("\n")
    # Tear the last record mid-append, as SIGKILL would.
    lines[-1] = lines[-1][: len(lines[-1]) // 2]
    journal.journal_path.write_text("\n".join(lines))
    assert RunJournal(tmp_path).completed_results() == {0: "ok"}


def test_corrupt_middle_line_skipped(tmp_path):
    """A torn record anywhere (not just the tail) is skipped, never
    allowed to shadow the good records around it."""
    journal = RunJournal(tmp_path)
    journal.record(0, "a", "ok")
    journal.record(1, "b", "ok")
    lines = journal.journal_path.read_text().rstrip("\n").split("\n")
    lines[0] = lines[0][:10]
    journal.journal_path.write_text("\n".join(lines) + "\n")
    assert RunJournal(tmp_path).completed_results() == {1: "ok"}


def test_interleaved_fragment_does_not_shadow_next_record(tmp_path):
    """A concurrent writer dying mid-append leaves a fragment with no
    newline; the next record lands on the same line.  The intact
    suffix is salvaged — the fragment costs nothing."""
    journal = RunJournal(tmp_path)
    journal.record(0, "a", "first")
    with open(journal.journal_path, "a", encoding="utf-8") as fh:
        fh.write('{"kind": "resu')  # torn, unterminated
    journal.record(1, "b", "second")
    assert RunJournal(tmp_path).completed_results() == {
        0: "first",
        1: "second",
    }


def test_garbage_line_skipped(tmp_path):
    journal = RunJournal(tmp_path)
    journal.record(0, "a", "kept")
    with open(journal.journal_path, "a", encoding="utf-8") as fh:
        fh.write("not json at all\n")
    journal.record(1, "b", "also kept")
    assert journal.completed_results() == {0: "kept", 1: "also kept"}


def test_fsync_off_still_records(tmp_path):
    journal = RunJournal(tmp_path, fsync=False)
    assert journal.fsync is False
    journal.record(0, "a", 7)
    assert RunJournal(tmp_path).completed_results() == {0: 7}


def test_digest_mismatch_forces_rerun(tmp_path):
    journal = RunJournal(tmp_path)
    journal.record(0, "a", "trusted")
    journal.record(1, "b", "rotted")
    path = tmp_path / "results" / "task-00001.pkl"
    payload = bytearray(path.read_bytes())
    payload[len(payload) // 2] ^= 0x40
    path.write_bytes(bytes(payload))
    # The rotted result is silently absent — never returned wrong.
    assert journal.completed_results() == {0: "trusted"}


def test_missing_result_file_forces_rerun(tmp_path):
    journal = RunJournal(tmp_path)
    journal.record(0, "a", "kept")
    journal.record(1, "b", "lost")
    (tmp_path / "results" / "task-00001.pkl").unlink()
    assert journal.completed_results() == {0: "kept"}


def test_crash_counts(tmp_path):
    journal = RunJournal(tmp_path)
    journal.note_crash(3, "fig6 point 3")
    journal.note_crash(3, "fig6 point 3")
    journal.note_crash(7)
    assert journal.crash_counts() == {3: 2, 7: 1}


def test_checkpoint_dir_layout(tmp_path):
    journal = RunJournal(tmp_path / "sweep")
    assert journal.checkpoint_dir(4) == str(
        tmp_path / "sweep" / "ckpt" / "task-00004"
    )


# -- run_tasks integration ------------------------------------------------------


def test_pool_sweep_skips_journaled_results(tmp_path):
    jdir = tmp_path / "sweep"
    out = run_tasks(_square, [1, 2, 3, 4], jobs=2, journal=jdir)
    assert out == [1, 4, 9, 16]
    logs = []
    # _boom in place of _square: if anything recomputed, it would raise.
    again = run_tasks(_boom, [1, 2, 3, 4], jobs=2, journal=jdir, log=logs.append)
    assert again == out
    assert any("4 of 4" in line for line in logs)


def test_serial_sweep_skips_journaled_results(tmp_path):
    jdir = tmp_path / "sweep"
    assert run_tasks(_square, [5, 6], jobs=1, journal=jdir) == [25, 36]
    logs = []
    assert run_tasks(_boom, [5, 6], jobs=1, journal=jdir, log=logs.append) == [
        25,
        36,
    ]
    assert all("(journaled)" in line for line in logs)


def test_partial_journal_recomputes_only_missing(tmp_path):
    jdir = tmp_path / "sweep"
    journal = RunJournal(jdir)
    journal.record(1, "pre", 99)
    out = run_tasks(_square, [1, 2, 3], jobs=1, journal=jdir)
    # Task 1's journaled value wins; the others were computed.
    assert out == [1, 99, 9]


def test_journal_path_accepts_plain_directory(tmp_path):
    out = run_tasks(_square, [3], jobs=1, journal=str(tmp_path / "j"))
    assert out == [9]
    assert (tmp_path / "j" / "journal.jsonl").exists()


def test_pool_death_blamed_then_demoted_to_serial(tmp_path):
    """A task that kills its worker ``MAX_TASK_CRASHES`` times is blamed
    through its pid file each time, then demoted to serial-in-parent —
    the sweep still completes with correct results."""
    jdir = tmp_path / "sweep"
    logs = []
    tasks = [("a", str(tmp_path)), ("victim", str(tmp_path)), ("b", str(tmp_path))]
    out = run_tasks(_kill_twice, tasks, jobs=2, journal=jdir, log=logs.append)
    assert out == ["done:a", "done:victim", "done:b"]
    text = "\n".join(logs)
    assert "blaming task(s)" in text
    assert "demoting to serial" in text
    assert RunJournal(jdir).crash_counts() == {1: MAX_TASK_CRASHES}


def test_pool_death_without_journal_still_completes(tmp_path):
    """Journal-free behaviour is unchanged: survivors rerun serially."""
    tasks = [("a", str(tmp_path)), ("b", str(tmp_path))]
    assert run_tasks(_kill_twice, tasks, jobs=2) == ["done:a", "done:b"]


# -- set_run_root auto-journaling -----------------------------------------------


def test_run_root_numbers_sweeps(tmp_path):
    root = tmp_path / "run"
    harness.set_run_root(root)
    try:
        run_tasks(_square, [1], jobs=1)
        run_tasks(_square, [2, 3], jobs=1)
    finally:
        harness.set_run_root(None)
    assert (root / "sweep-0000" / "journal.jsonl").exists()
    assert (root / "sweep-0001" / "journal.jsonl").exists()
    first = [
        json.loads(line)
        for line in (root / "sweep-0000" / "journal.jsonl").read_text().splitlines()
    ]
    assert [r["kind"] for r in first] == ["result"]


def test_run_root_off_by_default(tmp_path):
    run_tasks(_square, [1], jobs=1)
    assert list(tmp_path.iterdir()) == []
