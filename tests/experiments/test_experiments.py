"""Quick-scale runs of every experiment driver.

These check that each table/figure module runs end-to-end, produces
structurally complete results, and that the paper's *directional* claims
hold where they are cheap to check.  Full-scale numbers live in the
benchmark harness and EXPERIMENTS.md.
"""

import math

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments import (
    extras,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    table1,
    table2,
)

QUICK = ExperimentConfig(slots=6, interval=40.0, seed=101)


@pytest.fixture(scope="module")
def table1_result():
    return table1.run()


def test_fig3_space_overhead_trends():
    result = fig3.run(variants=("BB[10,0]", "BB[20,0]", "Int[45]", "Loop[45]"))
    medians = {
        name: report.summary.median for name, report in result.reports.items()
    }
    # Bigger min size -> less overhead; loop technique the leanest.
    assert medians["BB[20,0]"] <= medians["BB[10,0]"]
    assert medians["Loop[45]"] < medians["Int[45]"] < medians["BB[10,0]"]
    # The paper's headline: loop technique under ~10% here, marks <= 78B.
    assert medians["Loop[45]"] < 0.10
    assert all(r.max_mark_bytes <= 78 for r in result.reports.values())
    assert "Loop[45]" in fig3.format_result(result)


def test_fig4_time_overhead_small_and_loop_best():
    config = ExperimentConfig(slots=6, interval=40.0, seed=101)
    result = fig4.run(config, variants=("BB[15,0]", "Int[45]", "Loop[45]"))
    overheads = result.overheads
    assert all(0.0 <= v < 0.2 for v in overheads.values())
    # Loop marks execute the least often.
    assert overheads["Loop[45]"] <= overheads["BB[15,0]"] + 1e-9
    assert "Loop[45]" in fig4.format_result(result)


def test_table1_shapes(table1_result):
    rows = {row.name: row for row in table1_result.rows}
    assert len(rows) == 15
    # The two no-phase benchmarks never switch (Table 1's 0 rows).
    assert rows["459.GemsFDTD"].switches == 0
    assert rows["473.astar"].switches == 0
    # equake has the highest switch *rate* of the suite.
    rates = {
        name: row.switches / row.runtime_seconds for name, row in rows.items()
    }
    assert rates["183.equake"] == max(rates.values())
    assert rates["183.equake"] > 0
    assert "183.equake" in table1.format_result(table1_result)


def test_fig5_amortization(table1_result):
    result = fig5.run(table1_result)
    for row in table1_result.rows:
        if row.switches > 0:
            # Switching cost is amortized by orders of magnitude.
            assert result.amortization(row.name) > 1e3
    text = fig5.format_result(result)
    assert "inf (no switches)" in text


def test_fig6_interior_shape():
    result = fig6.run(
        QUICK, deltas=(0.005, 0.12, 0.6), strategy="Loop[45]"
    )
    low, mid, high = result.improvements
    # The extreme-low threshold migrates the workload away from one core
    # type and degrades; the middle does best (paper, IV-C1).
    assert mid > low
    assert mid >= high - 1.0
    assert "0.12" in fig6.format_result(result)


def test_fig7_error_injection_runs():
    result = fig7.run(QUICK, errors=(0.0, 0.3), strategy="Loop[45]")
    assert len(result.improvements) == 2
    assert "30%" in fig7.format_result(result)


def test_table2_and_fig8():
    result = table2.run(QUICK, variants=("BB[15,0]", "Loop[45]"))
    assert len(result.rows) == 2
    assert result.baseline.fairness.completed > 0
    text = table2.format_result(result)
    assert "Loop[45]" in text
    scatter = fig8.run(table2=result)
    assert len(scatter.points) == 2
    assert "speedup" in fig8.format_result(scatter)


def test_extras_atom_comparison():
    result = extras.atom_comparison()
    assert result.mean_dynamic_ratio() >= 10.0
    for row in result.rows:
        if row.marks:
            assert row.atom_probes > row.marks
    assert "ATOM" in extras.format_atom(result)


def test_extras_typing_accuracy():
    accuracy = extras.typing_accuracy()
    assert accuracy.total_loops > 100
    # The paper reports ~15% loop misclassification; our static typer
    # lands in the same band (under one third).
    assert accuracy.error_rate < 1 / 3


def test_extras_sweeps_run():
    look = extras.lookahead_sweep(QUICK, depths=(0, 2))
    assert len(look.throughput) == 2
    size = extras.min_size_sweep(QUICK, sizes=(30, 60))
    assert len(size.throughput) == 2
    assert "lookahead" in extras.format_sweep(look)


def test_extras_three_core():
    result = extras.three_core_speedup(QUICK)
    assert math.isfinite(result.average_time_decrease)
    assert math.isfinite(result.throughput_improvement)
