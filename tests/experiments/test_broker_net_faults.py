"""Injected network faults against the HTTP broker transport.

Each test wires a misbehaving handler subclass into
``make_broker_server(handler_base=...)`` and asserts the two invariants
the transport exists to protect: **no lost tasks** (a dropped reply
never strands a lease until TTL — the idempotency-key retry recovers
it) and **no duplicate results** (a retried ``complete`` lands exactly
one payload file and one result row).
"""

import socket
import threading
import time

import pytest

from repro.errors import BrokerUnavailableError
from repro.experiments.broker import worker_loop
from repro.experiments.broker_net import (
    BrokerRequestHandler,
    HTTPBroker,
    make_broker_server,
)
from repro.taxonomy import BROKER_DOWN, state_of


def double(x):
    return x * 2


class FaultyHandler(BrokerRequestHandler):
    """Consumes one fault budget per matching POST from
    ``server.faults`` (``{path: remaining}``) in ``server.fault_mode``:

    - ``torn``  — send headers for the full body, write half, cut the
      socket (client sees a truncated/undecodable response)
    - ``drop``  — cut the socket without any reply at all
    - ``slow``  — stall ``server.fault_delay`` seconds before replying
      (past the client timeout, the request still executes)
    """

    def _reply(self, code, body=b"", content_type="application/json"):
        if self.command == "POST" and self._take_fault():
            mode = self.server.fault_mode
            if mode == "torn":
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body[: max(1, len(body) // 2)])
                self.wfile.flush()
            self.close_connection = True
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            return
        BrokerRequestHandler._reply(self, code, body, content_type)

    def _take_fault(self) -> bool:
        faults = getattr(self.server, "faults", None) or {}
        path = self.path.partition("?")[0]
        with self.server.fault_lock:
            if faults.get(path, 0) > 0:
                faults[path] -= 1
                return True
        return False


class SlowHandler(FaultyHandler):
    def do_POST(self):  # noqa: N802 - stdlib naming
        if self._take_fault():
            time.sleep(self.server.fault_delay)
        FaultyHandler.do_POST(self)


def _serve_faulty(directory, mode, faults, handler=FaultyHandler,
                  delay=0.0):
    server = make_broker_server(directory, lease_ttl=5,
                                handler_base=handler)
    server.fault_mode = mode
    server.faults = dict(faults)
    server.fault_lock = threading.Lock()
    server.fault_delay = delay
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, f"http://{host}:{port}"


def _client(url, **kwargs):
    kwargs.setdefault("timeout", 2.0)
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("cooldown", 0.3)
    return HTTPBroker(url, **kwargs)


def _drain(client, worker="w"):
    order = []
    while True:
        lease = client.claim(worker)
        if lease is None:
            break
        fn, task = lease.load()
        client.complete(lease, fn(task))
        order.append(lease.key)
    return order


def _assert_exactly_once(server, sweep, n):
    """Every task done, no quarantine, one payload file and one result
    row per task."""
    broker = server.broker
    counts = broker.counts(sweep)
    assert counts["done"] == n
    assert counts["pending"] == counts["leased"] == 0
    assert counts["quarantined"] == 0
    assert len(broker.result_digests(sweep)) == n
    payloads = list(broker.results_dir.glob("*.pkl"))
    assert len(payloads) == n


def test_torn_complete_response_retry_converges(tmp_path):
    server, url = _serve_faulty(tmp_path / "q", "torn",
                                {"/api/complete": 2})
    try:
        client = _client(url)
        sweep = client.enqueue(double, [1, 2, 3])
        _drain(client)
        _assert_exactly_once(server, sweep, 3)
        assert client.replay(sweep) == {0: 2, 1: 4, 2: 6}
    finally:
        server.shutdown()
        server.server_close()


def test_dropped_complete_reply_replays_from_idempotency_log(tmp_path):
    """The first ``complete`` executes server-side but its reply never
    arrives; the client's retry carries the same Idempotency-Key and
    must get the *recorded* response back — one result, not two."""
    server, url = _serve_faulty(tmp_path / "q", "drop",
                                {"/api/complete": 1})
    try:
        client = _client(url)
        sweep = client.enqueue(double, [5])
        lease = client.claim("w")
        fn, task = lease.load()
        assert client.complete(lease, fn(task)) is True
        _assert_exactly_once(server, sweep, 1)
    finally:
        server.shutdown()
        server.server_close()


def test_dropped_claim_reply_does_not_strand_the_lease(tmp_path):
    """A claim whose reply is lost must not leave the task leased to
    nobody until the TTL runs out: the retry replays the same lease and
    the worker proceeds immediately."""
    server, url = _serve_faulty(tmp_path / "q", "drop",
                                {"/api/claim": 1})
    try:
        client = _client(url)
        sweep = client.enqueue(double, [1, 2])
        started = time.monotonic()
        keys = _drain(client)
        assert time.monotonic() - started < 5.0  # never waited out a TTL
        assert len(keys) == len(set(keys)) == 2
        _assert_exactly_once(server, sweep, 2)
    finally:
        server.shutdown()
        server.server_close()


def test_slow_complete_times_out_then_lands_exactly_once(tmp_path):
    """The original request stalls past the client timeout but still
    executes; the retry races it.  Content-keyed completion makes the
    collision harmless: one payload file, one row."""
    server, url = _serve_faulty(tmp_path / "q", "slow",
                                {"/api/complete": 1},
                                handler=SlowHandler, delay=2.0)
    try:
        client = _client(url, timeout=0.5)
        sweep = client.enqueue(double, [9])
        lease = client.claim("w")
        fn, task = lease.load()
        assert client.complete(lease, fn(task)) is True
        time.sleep(2.2)  # let the stalled original finish server-side
        _assert_exactly_once(server, sweep, 1)
        assert client.replay(sweep) == {0: 18}
    finally:
        server.shutdown()
        server.server_close()


def test_connection_refused_surfaces_broker_down(tmp_path):
    server, url = _serve_faulty(tmp_path / "q", "drop", {})
    client = _client(url, retries=1, timeout=0.5)
    client.enqueue(double, [1])
    server.shutdown()
    server.server_close()
    with pytest.raises(BrokerUnavailableError) as err:
        client.claim("w")
    assert state_of(str(err.value)) == BROKER_DOWN


def test_worker_loop_drains_through_fault_storm(tmp_path):
    """A worker loop pointed at a server that tears, drops, and delays
    a handful of replies still completes every task exactly once with
    nothing quarantined."""
    server, url = _serve_faulty(
        tmp_path / "q", "torn",
        {"/api/claim": 2, "/api/complete": 2, "/api/heartbeat": 1},
    )
    try:
        client = _client(url)
        sweep = client.enqueue(double, list(range(8)))
        completed = worker_loop(url, worker="stormy", poll_interval=0.05)
        assert completed == 8
        _assert_exactly_once(server, sweep, 8)
        assert client.replay(sweep) == {i: 2 * i for i in range(8)}
    finally:
        server.shutdown()
        server.server_close()
