"""CLI verb tests: ``enqueue`` / ``work`` / ``status`` / ``bless``.

Each test drives ``python -m repro.experiments <verb>`` as a real
subprocess against a broker directory prepared through the library
API, so the argument plumbing, environment handling, and report
formatting are exercised exactly as an operator would hit them.  The
sweeps use ``builtins.abs`` as the point function — importable by any
worker subprocess without test-module path games.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.experiments.broker import Broker, worker_loop

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _cli(*argv, env=None):
    merged = dict(os.environ, PYTHONPATH=_SRC)
    merged.pop("REPRO_BROKER_DIR", None)
    merged.pop("REPRO_JOBS", None)
    if env:
        merged.update(env)
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *argv],
        capture_output=True, text=True, timeout=120, env=merged,
    )


def test_status_on_empty_broker(tmp_path):
    out = _cli("status", str(tmp_path))
    assert out.returncode == 0
    assert "empty broker" in out.stdout


def test_work_drains_and_status_reports_settled(tmp_path):
    broker = Broker(tmp_path)
    sweep = broker.enqueue(abs, [-3, -4, 5])
    out = _cli("work", str(tmp_path), "--jobs", "1")
    assert out.returncode == 0, out.stderr
    assert "worker drained: 3 task(s) completed" in out.stdout
    assert broker.replay(sweep) == {0: 3, 1: 4, 2: 5}
    status = _cli("status", str(tmp_path))
    assert f"{sweep} [settled]" in status.stdout
    assert "3/3 done" in status.stdout


def test_work_honors_worker_host_jobs_env(tmp_path):
    """Satellite: the worker count comes from the *worker* host's
    REPRO_JOBS, never from anything the enqueuing host wrote."""
    Broker(tmp_path).enqueue(abs, [-1, -2])
    out = _cli("work", str(tmp_path), env={"REPRO_JOBS": "2"})
    assert out.returncode == 0, out.stderr
    assert "2 worker(s) drained" in out.stdout


def test_bless_then_status_reports_drift_state(tmp_path):
    broker = Broker(tmp_path)
    broker.enqueue(abs, [-7, 7], labels=["n7", "p7"])
    worker_loop(tmp_path, worker="w1")
    blessed = _cli("bless", str(tmp_path))
    assert blessed.returncode == 0
    assert "blessed 2 result(s)" in blessed.stdout
    status = _cli("status", str(tmp_path))
    assert "match golden" in status.stdout


def test_bless_skips_running_sweeps(tmp_path):
    broker = Broker(tmp_path)
    broker.enqueue(abs, [-9])
    broker.claim("busy")  # leave the sweep mid-flight
    out = _cli("bless", str(tmp_path))
    assert "still running" in out.stdout
    assert "nothing to bless" in out.stdout


def test_status_reports_quarantine(tmp_path):
    broker = Broker(tmp_path, max_attempts=1)
    sweep = broker.enqueue(abs, [-5], labels=["victim"])
    lease = broker.claim("w1")
    broker.fail(lease, ValueError("poisoned"), now=None)
    out = _cli("status", str(tmp_path))
    assert f"QUARANTINED {sweep}[0] victim" in out.stdout
    assert "poisoned" in out.stdout


def test_unknown_experiment_message_lists_verbs(tmp_path):
    out = _cli("no-such-thing")
    assert out.returncode != 0
    assert "enqueue" in out.stderr and "status" in out.stderr
