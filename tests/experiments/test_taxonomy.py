"""The shared terminal-state taxonomy and the status --watch surface."""

from __future__ import annotations

import pytest

from repro.taxonomy import (
    TERMINAL_STATES,
    cancelled_reason,
    demotion_reason,
    failed_reason,
    lease_expired_reason,
    pool_death_reason,
    state_of,
)


def test_every_helper_emits_a_parseable_state():
    reasons = [
        lease_expired_reason(3, 3, "host-1:42"),
        failed_reason(2, 3, "ValueError: boom"),
        cancelled_reason("queued"),
        cancelled_reason("missed"),
        pool_death_reason(["a", "b"]),
        demotion_reason("delta=0.1", 2),
    ]
    for reason in reasons:
        assert state_of(reason) in TERMINAL_STATES, reason


def test_state_of_tolerates_foreign_strings():
    assert state_of("") == ""
    assert state_of(None) == ""
    assert state_of("something went wrong") == ""
    assert state_of("failedX: nope") == ""


def _square(x):
    return x * x


def test_broker_quarantine_reasons_carry_taxonomy_states(tmp_path):
    from repro.experiments.broker import Broker

    broker = Broker(tmp_path, max_attempts=1, lease_ttl=0.01)
    broker.enqueue(_square, [1], labels=["only"])
    lease = broker.claim("w1")
    assert lease is not None
    state = broker.fail(lease, "RuntimeError: boom")
    assert state == "quarantined"
    rows = broker.quarantined()
    assert len(rows) == 1
    reason = rows[0][4]
    assert state_of(reason) == "failed"
    assert "RuntimeError: boom" in reason


def test_lease_reclamation_reason_carries_taxonomy_state(tmp_path):
    import time

    from repro.experiments.broker import Broker

    broker = Broker(tmp_path, max_attempts=1, lease_ttl=0.01)
    broker.enqueue(_square, [1], labels=["only"])
    assert broker.claim("w1") is not None
    time.sleep(0.02)
    reclaimed = broker.reclaim_expired()
    assert reclaimed and reclaimed[0][3] == "quarantined"
    reason = broker.quarantined()[0][4]
    assert state_of(reason) == "lease-expired"
    assert "w1" in reason


def test_render_status_includes_event_tail(tmp_path):
    from repro.experiments.__main__ import _render_status
    from repro.experiments.broker import Broker

    rendered = _render_status(str(tmp_path))
    assert "empty broker" in rendered

    broker = Broker(tmp_path)
    sweep = broker.enqueue(_square, [1, 2], labels=["a", "b"])
    rendered = _render_status(str(tmp_path), events_tail=10)
    assert sweep in rendered
    assert "0/2 done" in rendered
    assert "last 10 event(s):" in rendered
    assert "enqueue" in rendered


def test_watch_flag_parses():
    from repro.experiments.__main__ import _parse_args

    args = _parse_args(["status", "somewhere", "--watch", "--watch-interval", "0.5"])
    assert args.watch and args.watch_interval == 0.5
    assert _parse_args(["status", "somewhere"]).watch is False
