"""LatencySketch / QueueDepthSeries / per-class throughput."""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import MetricsError
from repro.metrics.latency import (
    LatencySketch,
    QueueDepthSeries,
    per_class_throughput,
)


def test_quantiles_within_relative_error():
    rng = random.Random(42)
    samples = [rng.expovariate(0.2) for _ in range(5000)]
    sketch = LatencySketch(relative_error=0.01)
    for value in samples:
        sketch.add(value)
    samples.sort()
    for q in (0.5, 0.9, 0.95, 0.99):
        exact = samples[min(len(samples) - 1, int(q * len(samples)))]
        got = sketch.quantile(q)
        assert got == pytest.approx(exact, rel=0.011)


def test_empty_and_single_value():
    sketch = LatencySketch()
    assert sketch.quantile(0.5) == 0.0
    assert len(sketch) == 0
    sketch.add(3.0)
    assert sketch.quantile(0.0) == pytest.approx(3.0, rel=0.011)
    assert sketch.quantile(1.0) == pytest.approx(3.0, rel=0.011)
    assert sketch.mean == 3.0


def test_zero_values_report_zero():
    sketch = LatencySketch()
    for _ in range(10):
        sketch.add(0.0)
    sketch.add(5.0)
    assert sketch.quantile(0.5) == 0.0
    assert sketch.quantile(1.0) == pytest.approx(5.0, rel=0.011)


def test_rejects_bad_samples():
    sketch = LatencySketch()
    with pytest.raises(MetricsError):
        sketch.add(-1.0)
    with pytest.raises(MetricsError):
        sketch.add(float("nan"))
    with pytest.raises(MetricsError):
        sketch.quantile(1.5)
    with pytest.raises(MetricsError):
        LatencySketch(relative_error=0.0)


def test_insertion_order_independent_and_serialization_canonical():
    rng = random.Random(7)
    samples = [rng.uniform(0.001, 100.0) for _ in range(1000)]
    a, b = LatencySketch(), LatencySketch()
    for value in samples:
        a.add(value)
    for value in reversed(samples):
        b.add(value)
    da, db = a.to_dict(), b.to_dict()
    # `total` is a float accumulator and so insertion-order sensitive;
    # everything feeding the quantile path is exactly order-free.
    da.pop("total"), db.pop("total")
    assert json.dumps(da, sort_keys=True) == json.dumps(db, sort_keys=True)
    for q in (0.5, 0.95, 0.99):
        assert a.quantile(q) == b.quantile(q)


def test_merge_equals_union():
    rng = random.Random(3)
    left = [rng.expovariate(1.0) for _ in range(500)]
    right = [rng.expovariate(3.0) for _ in range(700)]
    merged, union = LatencySketch(), LatencySketch()
    other = LatencySketch()
    for value in left:
        merged.add(value)
        union.add(value)
    for value in right:
        other.add(value)
        union.add(value)
    merged.merge(other)
    dm, du = merged.to_dict(), union.to_dict()
    assert dm.pop("total") == pytest.approx(du.pop("total"))
    assert dm == du
    with pytest.raises(MetricsError):
        merged.merge(LatencySketch(relative_error=0.05))


def test_roundtrip():
    sketch = LatencySketch()
    for value in (0.0, 0.5, 2.0, 2.0, 9.75):
        sketch.add(value)
    clone = LatencySketch.from_dict(
        json.loads(json.dumps(sketch.to_dict()))
    )
    assert clone.to_dict() == sketch.to_dict()
    assert clone.quantile(0.5) == sketch.quantile(0.5)
    empty = LatencySketch.from_dict(json.loads(json.dumps(LatencySketch().to_dict())))
    assert empty.quantile(0.9) == 0.0


def test_depth_series_from_events():
    series = QueueDepthSeries.from_events(
        arrivals=[1.0, 2.0, 3.0], departures=[2.5, 4.0]
    )
    assert series.at(0.5) == 0
    assert series.at(1.0) == 1
    assert series.at(2.2) == 2
    assert series.at(2.7) == 1
    assert series.at(3.5) == 2
    assert series.at(10.0) == 1
    assert series.peak() == 2


def test_depth_series_tie_is_departure_first():
    series = QueueDepthSeries.from_events(arrivals=[1.0, 2.0], departures=[2.0])
    # At t=2.0 the departure folds in before the arrival: depth never
    # reads 2.
    assert series.peak() == 1
    assert series.at(2.0) == 1


def test_depth_series_time_weighted_mean():
    series = QueueDepthSeries()
    series.record(0.0, 1)
    series.record(2.0, 3)
    series.record(4.0, 0)
    # [0,2): 1, [2,4): 3 -> mean over [0,4] = (2*1 + 2*3)/4 = 2.0
    assert series.mean(0.0, 4.0) == pytest.approx(2.0)
    assert series.mean(2.0, 4.0) == pytest.approx(3.0)
    assert series.mean() == pytest.approx(2.0)
    assert QueueDepthSeries().mean(0.0, 5.0) == 0.0
    with pytest.raises(MetricsError):
        series.record(1.0, 2)  # out of order


def test_per_class_throughput():
    out = per_class_throughput({"b": 4, "a": 2}, 10.0)
    assert out == {"a": 0.2, "b": 0.4}
    assert list(out) == ["a", "b"]
    with pytest.raises(MetricsError):
        per_class_throughput({}, 0.0)
