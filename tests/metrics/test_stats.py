"""Unit tests for statistics helpers."""

import pytest

from repro.errors import ReproError
from repro.metrics.stats import BoxPlot, box_plot, geometric_mean, mean


def test_box_plot_five_numbers():
    box = box_plot([1, 2, 3, 4, 5])
    assert box.minimum == 1
    assert box.median == 3
    assert box.maximum == 5
    assert box.q1 == 2
    assert box.q3 == 4


def test_box_plot_single_value():
    box = box_plot([7.0])
    assert box.as_tuple() == (7.0, 7.0, 7.0, 7.0, 7.0)


def test_box_plot_interpolates():
    box = box_plot([0.0, 1.0])
    assert box.median == pytest.approx(0.5)
    assert box.q1 == pytest.approx(0.25)


def test_box_plot_unsorted_input():
    assert box_plot([3, 1, 2]).median == 2


def test_box_plot_empty_rejected():
    with pytest.raises(ReproError):
        box_plot([])


def test_geometric_mean():
    assert geometric_mean([1, 100]) == pytest.approx(10.0)
    assert geometric_mean([4.0]) == pytest.approx(4.0)


def test_geometric_mean_rejects_nonpositive():
    with pytest.raises(ReproError):
        geometric_mean([1.0, 0.0])
    with pytest.raises(ReproError):
        geometric_mean([])


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ReproError):
        mean([])
