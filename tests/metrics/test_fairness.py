"""Unit tests for the Bender et al. fairness metrics."""

import pytest

from repro.errors import ReproError
from repro.metrics.fairness import (
    average_process_time,
    fairness_report,
    max_flow,
    max_stretch,
    percent_decrease,
)


class FakeProcess:
    def __init__(self, arrival, completion, isolated):
        self.arrival = arrival
        self.completion = completion
        self.isolated_time = isolated
        self.pid = id(self) % 1000
        self.name = "fake"

    @property
    def flow_time(self):
        if self.completion is None:
            return None
        return self.completion - self.arrival


def test_max_flow():
    procs = [FakeProcess(0, 10, 1), FakeProcess(5, 25, 1)]
    assert max_flow(procs) == 20.0


def test_max_stretch():
    procs = [FakeProcess(0, 10, 5), FakeProcess(0, 12, 2)]
    assert max_stretch(procs) == 6.0


def test_average_process_time():
    procs = [FakeProcess(0, 4, 1), FakeProcess(0, 8, 1)]
    assert average_process_time(procs) == 6.0


def test_incomplete_processes_excluded():
    procs = [FakeProcess(0, 10, 1), FakeProcess(0, None, 1)]
    assert max_flow(procs) == 10.0


def test_no_completed_processes_rejected():
    with pytest.raises(ReproError, match="no completed"):
        max_flow([FakeProcess(0, None, 1)])


def test_stretch_requires_isolated_time():
    with pytest.raises(ReproError, match="isolated processing time"):
        max_stretch([FakeProcess(0, 10, 0)])


def test_percent_decrease_sign_convention():
    """Positive = improvement, as in Table 2."""
    assert percent_decrease(100.0, 64.05) == pytest.approx(35.95)
    assert percent_decrease(100.0, 110.0) == pytest.approx(-10.0)
    with pytest.raises(ReproError):
        percent_decrease(0.0, 5.0)


def test_fairness_report_and_versus():
    baseline = fairness_report([FakeProcess(0, 10, 2), FakeProcess(0, 20, 2)])
    tuned = fairness_report([FakeProcess(0, 8, 2), FakeProcess(0, 12, 2)])
    assert baseline.completed == 2
    comparison = tuned.versus(baseline)
    assert comparison.average_time_decrease == pytest.approx(
        100 * (15 - 10) / 15
    )
    assert comparison.max_flow_decrease == pytest.approx(40.0)
    assert comparison.max_stretch_decrease == pytest.approx(40.0)
