"""Unit tests for space/time overhead metrics."""

import pytest

from repro.errors import ReproError
from repro.instrument import LoopStrategy
from repro.metrics.overhead import space_overhead_report, time_overhead
from repro.sim import core2quad_amp
from repro.sim.executor import SimulationResult
from repro.workloads.spec import spec_benchmark


def test_space_overhead_report_shape():
    suite = [spec_benchmark("183.equake"), spec_benchmark("172.mgrid")]
    report = space_overhead_report(suite, LoopStrategy(45))
    assert report.strategy_name == "Loop[45]"
    assert set(report.per_benchmark) == {"183.equake", "172.mgrid"}
    assert 0.0 <= report.summary.minimum <= report.summary.maximum
    assert report.max_mark_bytes <= 78


def test_space_overhead_empty_suite_rejected():
    with pytest.raises(ReproError):
        space_overhead_report([], LoopStrategy(45))


def _result(buckets):
    return SimulationResult(core2quad_amp(), 400.0, throughput_buckets=buckets)


def test_time_overhead_fraction():
    baseline = _result({0: 1000.0})
    marked = _result({0: 998.0})
    assert time_overhead(baseline, marked) == pytest.approx(0.002)


def test_time_overhead_clamped_at_zero():
    baseline = _result({0: 1000.0})
    marked = _result({0: 1001.0})  # Noise: marked run "faster".
    assert time_overhead(baseline, marked) == 0.0


def test_time_overhead_requires_baseline_work():
    with pytest.raises(ReproError):
        time_overhead(_result({}), _result({0: 1.0}))
