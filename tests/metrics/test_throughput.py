"""Unit tests for throughput metrics."""

import pytest

from repro.errors import ReproError
from repro.sim import core2quad_amp
from repro.sim.executor import SimulationResult
from repro.metrics.throughput import (
    throughput,
    throughput_improvement,
    throughput_series,
)


def _result(buckets):
    return SimulationResult(core2quad_amp(), 400.0, throughput_buckets=buckets)


def test_throughput_sums_horizon():
    result = _result({0: 100.0, 399: 50.0, 400: 999.0})
    assert throughput(result, 400.0) == 150.0


def test_throughput_improvement():
    base = _result({0: 100.0})
    tuned = _result({0: 120.0})
    assert throughput_improvement(base, tuned, 400.0) == pytest.approx(20.0)


def test_improvement_requires_nonzero_baseline():
    with pytest.raises(ReproError, match="no instructions"):
        throughput_improvement(_result({}), _result({0: 1.0}), 400.0)


def test_bad_horizon_rejected():
    with pytest.raises(ReproError):
        throughput(_result({0: 1.0}), 0.0)


def test_series_buckets():
    result = _result({0: 1.0, 5: 2.0, 15: 4.0, 25: 8.0})
    series = throughput_series(result, horizon=30.0, bucket=10.0)
    assert series == [3.0, 4.0, 8.0]


def test_series_bad_bucket():
    with pytest.raises(ReproError):
        throughput_series(_result({}), 100.0, 0.0)
