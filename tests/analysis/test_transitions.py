"""Unit tests for phase-transition point computation."""

from repro.isa import assemble
from repro.analysis import (
    StaticBlockTyper,
    annotate_program,
    basic_block_transitions,
    interval_transitions,
    loop_transitions,
)
from repro.analysis.block_typing import BlockTyping
from repro.program import build_cfg


def _two_phase_source(body_a=20, body_b=20):
    """Two sequential loops with hand-typed bodies."""
    lines = [".region BIG 33554432", ".proc main", "    movi r1, 0", "loopa:"]
    lines += ["    fmul f1, f1, f2"] * body_a
    lines += [
        "    add r1, r1, 1",
        "    cmp r1, 100",
        "    br lt, loopa",
        "    movi r2, 0",
        "loopb:",
    ]
    lines += ["    load r3, BIG[r2]:64"] * body_b
    lines += [
        "    add r2, r2, 1",
        "    cmp r2, 100",
        "    br lt, loopb",
        "    ret",
        ".endproc",
    ]
    return "\n".join(lines)


def _hand_typed(program):
    """Type loop-a's body 1 (compute), loop-b's body 0 (memory)."""
    cfg = build_cfg(program["main"])
    types = {}
    for block in cfg.blocks:
        has_load = any(i.mem is not None for i in block.instrs)
        types[block.uid] = 0 if has_load else 1
    return annotate_program(program, BlockTyping(types, 2))


def test_bb_marks_differently_typed_big_blocks():
    program = assemble(_two_phase_source())
    aprog = _hand_typed(program)
    points = basic_block_transitions(aprog, min_size=10, lookahead=0)
    assert points
    types = {p.phase_type for p in points}
    assert types == {0, 1}
    for p in points:
        assert p.kind == "bb"
        assert p.size_instrs >= 10


def test_bb_min_size_filters_small_blocks():
    program = assemble(_two_phase_source(body_a=5, body_b=5))
    aprog = _hand_typed(program)
    assert basic_block_transitions(aprog, min_size=30) == []


def test_bb_uniform_typing_marks_only_entry_context():
    program = assemble(_two_phase_source())
    cfg = build_cfg(program["main"])
    typing = BlockTyping({b.uid: 1 for b in cfg.blocks}, 2)
    aprog = annotate_program(program, typing)
    points = basic_block_transitions(aprog, min_size=10)
    # With every block the same type, the only mark left guards the
    # first sized section (the caller's phase type is unknown at entry);
    # no marks appear between the equal-typed loops.
    assert len(points) == 1
    assert points[0].entry_block == 1


def test_lookahead_requires_majority():
    # A single big type-0 block whose successors are mostly type 1:
    # lookahead > 0 must suppress the mark.
    source = """
    .region BIG 33554432
    .proc main
    head:
    """ + "    load r1, BIG[r2]:64\n" * 12 + """
        cmp r1, 0
        br ge, other
    """ + "    fmul f1, f1, f2\n" * 12 + """
        ret
    other:
    """ + "    fadd f3, f3, f4\n" * 12 + """
        ret
    .endproc
    """
    program = assemble(source)
    aprog = _hand_typed(program)
    with_look = basic_block_transitions(aprog, min_size=10, lookahead=2)
    without = basic_block_transitions(aprog, min_size=10, lookahead=0)
    memory_marks_with = [p for p in with_look if p.phase_type == 0]
    memory_marks_without = [p for p in without if p.phase_type == 0]
    assert memory_marks_without
    assert not memory_marks_with


def test_interval_marks_cover_both_phases():
    program = assemble(_two_phase_source())
    aprog = _hand_typed(program)
    points = interval_transitions(aprog, min_size=15)
    assert {p.phase_type for p in points} == {0, 1}
    for p in points:
        assert p.kind == "interval"
        # Sections are whole intervals: bigger than one block.
        assert p.size_instrs >= 15


def test_loop_marks_at_loop_entries():
    program = assemble(_two_phase_source())
    aprog = _hand_typed(program)
    points = loop_transitions(aprog, min_size=15)
    assert len(points) == 2
    for p in points:
        assert p.kind == "loop"
        assert not p.at_proc_entry
        # Trigger edges come from outside the loop body.
        for src, dst in p.trigger_edges:
            assert src not in p.section_blocks
            assert dst == p.entry_block


def test_loop_min_size_filters():
    program = assemble(_two_phase_source(body_a=8, body_b=8))
    aprog = _hand_typed(program)
    assert loop_transitions(aprog, min_size=45) == []
    assert loop_transitions(aprog, min_size=5)


def test_callee_elimination(call_program):
    """helper's loop marks are dropped when every call site sits in a
    same-typed marked loop of the caller."""
    types = {}
    for proc in call_program:
        for block in build_cfg(proc):
            types[block.uid] = 0
    aprog = annotate_program(call_program, BlockTyping(types, 2))
    kept = loop_transitions(aprog, min_size=1, eliminate_same_type_callees=True)
    raw = loop_transitions(aprog, min_size=1, eliminate_same_type_callees=False)
    kept_procs = {p.proc for p in kept}
    raw_procs = {p.proc for p in raw}
    assert "helper" in raw_procs
    assert "helper" not in kept_procs


def test_transition_point_uid_unique():
    program = assemble(_two_phase_source())
    aprog = _hand_typed(program)
    points = (
        basic_block_transitions(aprog, 10)
        + interval_transitions(aprog, 15)
        + loop_transitions(aprog, 15)
    )
    uids = [p.uid for p in points]
    assert len(uids) == len(set(uids))
