"""Unit tests for block feature extraction."""

from repro.isa import ProgramBuilder
from repro.program import build_cfg
from repro.analysis.features import block_features


def _first_block(build):
    pb = ProgramBuilder("t")
    pb.region("BIG", 64 << 20)
    with pb.proc("main") as b:
        build(b)
        b.ret()
    program = pb.build()
    return build_cfg(program["main"]).blocks[0], program


def test_compute_block_scores_high_compute_zero_memory():
    def build(b):
        for _ in range(4):
            b.fmul("f1", "f1", "f2")
            b.div("r1", "r1", 3)

    block, program = _first_block(build)
    features = block_features(block, program)
    assert features.compute_intensity > 5.0
    assert features.memory_boundedness == 0.0


def test_streaming_block_scores_high_memory():
    def build(b):
        for _ in range(6):
            b.load("r1", "BIG", index="r2", stride=64)

    block, program = _first_block(build)
    features = block_features(block, program)
    assert features.memory_boundedness > features.compute_intensity


def test_mov_heavy_block_scores_low_everywhere():
    def build(b):
        for _ in range(6):
            b.mov("r1", "r2")

    block, program = _first_block(build)
    features = block_features(block, program)
    assert features.compute_intensity <= 1.0
    assert features.memory_boundedness == 0.0


def test_features_are_per_instruction_normalised():
    def ten(b):
        for _ in range(10):
            b.fmul("f1", "f1", "f2")

    def twenty(b):
        for _ in range(20):
            b.fmul("f1", "f1", "f2")

    block_a, program_a = _first_block(ten)
    block_b, program_b = _first_block(twenty)
    fa = block_features(block_a, program_a)
    fb = block_features(block_b, program_b)
    # Same mix per instruction -> similar intensity despite length (the
    # trailing ret dilutes the shorter block slightly).
    assert abs(fa.compute_intensity - fb.compute_intensity) < 0.5


def test_as_tuple():
    block, program = _first_block(lambda b: b.add("r1", "r1", 1))
    features = block_features(block, program)
    assert features.as_tuple() == (
        features.compute_intensity,
        features.memory_boundedness,
    )
