"""Unit tests for Algorithm 1 (inter-procedural loop summarization)."""

from repro.isa import assemble
from repro.analysis import StaticBlockTyper, annotate_program, summarize_loops
from repro.analysis.block_typing import BlockTyping
from repro.program import build_cfg


def _uniform_typing(program, type_id=1, k=2):
    types = {}
    for proc in program:
        for block in build_cfg(proc):
            types[block.uid] = type_id
    return BlockTyping(types, k)


def _typing_by_header(program, header_types, default=1, k=2):
    """Type loop-header blocks specially, everything else `default`."""
    types = {}
    for proc in program:
        cfg = build_cfg(proc)
        for block in cfg:
            types[block.uid] = header_types.get(block.uid, default)
    return BlockTyping(types, k)


def test_same_type_nest_keeps_only_outer(nested_loop_program):
    """Algorithm 1: an outer loop with a same-typed single inner loop
    absorbs it (analysis moves outside the nest)."""
    aprog = annotate_program(
        nested_loop_program, _uniform_typing(nested_loop_program)
    )
    summary = summarize_loops(aprog)
    assert len(summary.all_loops) == 2
    assert len(summary.typed_loops) == 1
    survivor = summary.typed_loops[0]
    inner = min(summary.all_loops.values(), key=lambda tl: len(tl.loop.body))
    assert survivor.loop.contains(inner.loop)


def test_differently_typed_strong_inner_survives():
    """If the inner loop's type differs from the outer's and the inner's
    strength is at least the outer's, the outer loop is not added and
    the inner keeps its mark (Algorithm 1's one-child rule)."""
    # The outer body is large enough that its own type (1) dominates the
    # nesting-boosted inner contribution (type 0), but with strength
    # below the inner's perfect 1.0.
    source = (
        ".proc main\n    movi r1, 0\nouter:\n    movi r2, 0\ninner:\n"
        + "    load r3, BIG[r2]:64\n" * 4
        + "    add r2, r2, 1\n    cmp r2, 100\n    br lt, inner\n"
        + "    fmul f1, f1, f2\n" * 200
        + "    add r1, r1, 1\n    cmp r1, 10\n    br lt, outer\n"
        + "    ret\n.endproc\n"
    )
    program = assemble(".region BIG 33554432\n" + source)
    cfg = build_cfg(program["main"])
    from repro.program import find_loops

    loops = find_loops(cfg)
    inner = next(l for l in loops if l.depth == 1)
    outer = next(l for l in loops if l.depth == 0)
    types = {}
    for block in cfg.blocks:
        has_load = any(i.mem is not None for i in block.instrs)
        types[block.uid] = 0 if has_load else 1
    aprog = annotate_program(program, BlockTyping(types, 2))
    summary = summarize_loops(aprog)
    assert summary.all_loops[inner.uid].dominant_type == 0
    assert summary.all_loops[outer.uid].dominant_type == 1
    assert summary.all_loops[inner.uid].strength >= summary.all_loops[outer.uid].strength
    in_t = {tl.loop.uid for tl in summary.typed_loops}
    assert inner.uid in in_t
    assert outer.uid not in in_t


def test_disjoint_same_type_children_absorbed():
    program = assemble(
        """
        .proc main
            movi r1, 0
        outer:
            movi r2, 0
        a:
            add r2, r2, 1
            cmp r2, 3
            br lt, a
            movi r3, 0
        b:
            add r3, r3, 1
            cmp r3, 3
            br lt, b
            add r1, r1, 1
            cmp r1, 3
            br lt, outer
            ret
        .endproc
        """
    )
    aprog = annotate_program(program, _uniform_typing(program))
    summary = summarize_loops(aprog)
    assert len(summary.all_loops) == 3
    # All three share one type: only the outer loop survives in T.
    assert len(summary.typed_loops) == 1
    assert summary.typed_loops[0].loop.depth == 0


def test_interprocedural_callee_contributes(call_program):
    """helper's memory-typed loop dominates main's outer loop type."""
    # Type all of helper 0, all of main 1.
    types = {}
    for proc in call_program:
        for block in build_cfg(proc):
            types[block.uid] = 0 if proc.name == "helper" else 1
    aprog = annotate_program(call_program, BlockTyping(types, 2))
    summary = summarize_loops(aprog)
    outer = summary.all_loops["main@loop1"]
    # The callee's weight (inside the loop) dominates main's few blocks.
    assert outer.dominant_type == 0


def test_recursive_program_terminates():
    program = assemble(
        """
        .proc main
            call rec
            ret
        .endproc
        .proc rec
            movi r2, 0
        l:
            add r2, r2, 1
            cmp r2, 4
            br lt, l
            cmp r1, 0
            br le, out
            call rec
        out:
            ret
        .endproc
        """
    )
    aprog = annotate_program(program, _uniform_typing(program))
    summary = summarize_loops(aprog)
    assert "rec@loop1" in summary.all_loops
    assert summary.proc_summaries["rec"].dominant_type == 1


def test_strength_sigma_definition(nested_loop_program):
    aprog = annotate_program(
        nested_loop_program, _uniform_typing(nested_loop_program)
    )
    summary = summarize_loops(aprog)
    for typed in summary.all_loops.values():
        assert 0.0 < typed.strength <= 1.0


def test_proc_summaries_cover_all_procedures(call_program):
    aprog = annotate_program(call_program, _uniform_typing(call_program))
    summary = summarize_loops(aprog)
    assert set(summary.proc_summaries) == {"main", "helper"}
    assert summary.proc_summaries["main"].total_weight > 0
