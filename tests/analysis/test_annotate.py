"""Unit tests for attributed programs."""

from repro.analysis import StaticBlockTyper, annotate_program


def test_attributed_cfg_types(phased_program):
    program, _ = phased_program
    typing = StaticBlockTyper().type_blocks(program)
    aprog = annotate_program(program, typing)
    acfg = aprog["main"]
    for block in acfg:
        assert acfg.type_of(block.index) == typing.type_of(block)


def test_lazy_intervals_and_loops(phased_program):
    program, _ = phased_program
    aprog = annotate_program(
        program, StaticBlockTyper().type_blocks(program)
    )
    acfg = aprog["main"]
    assert acfg.intervals  # Computed on demand.
    assert acfg.loops
    assert acfg.intervals is acfg.intervals  # Cached.


def test_block_lookup_by_uid(call_program):
    aprog = annotate_program(
        call_program, StaticBlockTyper().type_blocks(call_program)
    )
    block = aprog.block("helper#0")
    assert block.proc == "helper"
    assert block.index == 0


def test_callgraph_cached(call_program):
    aprog = annotate_program(
        call_program, StaticBlockTyper().type_blocks(call_program)
    )
    assert aprog.callgraph is aprog.callgraph
    assert aprog.callgraph.callees("main") == {"helper"}


def test_iteration_covers_all_procedures(call_program):
    aprog = annotate_program(
        call_program, StaticBlockTyper().type_blocks(call_program)
    )
    names = {acfg.cfg.proc_name for acfg in aprog}
    assert names == {"main", "helper"}
