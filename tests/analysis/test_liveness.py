"""Unit tests for live-register analysis."""

from repro.analysis.liveness import ALL_LOCATIONS, FLAGS, compute_liveness, def_use
from repro.isa import assemble
from repro.isa.instructions import Instruction, MemAccess, Opcode
from repro.isa.registers import GPR, SP
from repro.program import build_cfg


def test_def_use_alu():
    instr = Instruction(Opcode.ADD, (GPR[1], GPR[2], GPR[3]))
    defs, uses = def_use(instr)
    assert defs == {"r1"}
    assert uses == {"r2", "r3"}


def test_def_use_literals_not_used():
    instr = Instruction(Opcode.ADD, (GPR[1], GPR[2], 7))
    _, uses = def_use(instr)
    assert uses == {"r2"}


def test_def_use_cmp_and_branch_via_flags():
    cmp_instr = Instruction(Opcode.CMP, (GPR[1], GPR[2]))
    defs, uses = def_use(cmp_instr)
    assert defs == {FLAGS}
    assert uses == {"r1", "r2"}
    from repro.isa.instructions import CondCode

    br = Instruction(Opcode.BR, (CondCode.LT, "x"))
    defs, uses = def_use(br)
    assert uses == {FLAGS}


def test_def_use_memory_index():
    load = Instruction(Opcode.LOAD, (GPR[1],), mem=MemAccess("A", 8, GPR[4]))
    defs, uses = def_use(load)
    assert defs == {"r1"}
    assert uses == {"r4"}
    store = Instruction(Opcode.STORE, (GPR[1],), mem=MemAccess("A", 8, GPR[4]))
    defs, uses = def_use(store)
    assert defs == set()
    assert uses == {"r1", "r4"}


def test_def_use_stack():
    push = Instruction(Opcode.PUSH, (GPR[1],))
    defs, uses = def_use(push)
    assert SP.name in defs and SP.name in uses and "r1" in uses


def test_def_use_syscall_scratch_abi():
    sys = Instruction(Opcode.SYS, (4,))
    defs, uses = def_use(sys)
    assert defs == {"r0", "r1", "r2"}
    assert uses == {"r0", "r1"}


def test_straightline_liveness():
    program = assemble(
        """
        .proc main
            movi r1, 1
            add r2, r1, 1
            add r3, r2, 1
            ret
        .endproc
        """
    )
    cfg = build_cfg(program["main"])
    result = compute_liveness(cfg, live_at_exit=())
    # Nothing live on entry: r1 is defined before its only use.
    assert "r1" not in result.live_in[0]
    # With an empty exit convention, nothing is live at the end.
    assert result.live_out[0] == set()


def test_use_before_def_is_live_in():
    program = assemble(
        ".proc main\n    add r2, r1, 1\n    ret\n.endproc"
    )
    cfg = build_cfg(program["main"])
    result = compute_liveness(cfg, live_at_exit=())
    assert "r1" in result.live_in[0]


def test_loop_keeps_counter_live():
    program = assemble(
        """
        .proc main
            movi r1, 0
        loop:
            add r1, r1, 1
            cmp r1, 10
            br lt, loop
            ret
        .endproc
        """
    )
    cfg = build_cfg(program["main"])
    result = compute_liveness(cfg, live_at_exit=())
    header = cfg.back_edges()[0].dst
    assert "r1" in result.live_in[header]


def test_all_live_at_exit_default():
    program = assemble(".proc main\n    movi r1, 1\n    ret\n.endproc")
    cfg = build_cfg(program["main"])
    result = compute_liveness(cfg)  # Default: everything live at ret.
    assert result.live_out[0] == set(ALL_LOCATIONS)
    # r1 is redefined before the exit, so it is NOT live on entry...
    assert "r1" not in result.live_in[0]
    # ...but an untouched register flows straight through.
    assert "r9" in result.live_in[0]


def test_diamond_merges_liveness(diamond_program):
    cfg = build_cfg(diamond_program["main"])
    result = compute_liveness(cfg, live_at_exit=())
    # r2 is defined on both sides and used at the join: live into both
    # sides' exits, not above its definitions.
    join = 3
    assert "r2" in result.live_in[join]


def test_marks_save_fewer_registers_when_dead():
    """A section entry where r0-r2 are all redefined before use lets the
    mark skip saving them entirely."""
    # loopa reads r0 (keeping it live at its entry); loopb redefines
    # r0-r2 before any use, so they are dead at loopb's entry.
    source = """
    .region BIG 33554432
    .proc main
        movi r5, 0
    loopa:
        add r7, r7, r0
    """ + "    fmul f1, f1, f2\n" * 12 + """
        add r5, r5, 1
        cmp r5, 9
        br lt, loopa
        movi r6, 0
    loopb:
        movi r0, 1
        movi r1, 2
        movi r2, 3
    """ + "    load r4, BIG[r6]:8\n    add r4, r4, r0\n" * 6 + """
        add r6, r6, 1
        cmp r6, 9
        br lt, loopb
        ret
    .endproc
    """
    from repro.analysis.block_typing import BlockTyping
    from repro.instrument import LoopStrategy, instrument

    program = assemble(source)
    cfg = build_cfg(program["main"])
    types = {}
    for block in cfg.blocks:
        has_load = any(i.mem is not None for i in block.instrs)
        types[block.uid] = 0 if has_load else 1
    inst = instrument(
        program, LoopStrategy(10), typing=BlockTyping(types, 2)
    )
    by_entry = {m.point.entry_block: m for m in inst.marks}
    loopb_header = next(
        b.index for b in cfg.blocks
        if b.start == program["main"].labels["loopb"]
    )
    # loopb redefines r0-r2 immediately: its mark saves nothing.
    assert by_entry[loopb_header].saves == ()
    # loopa reads r0, so its mark must save it — and is bigger for it.
    loopa_header = next(
        b.index for b in cfg.blocks
        if b.start == program["main"].labels["loopa"]
    )
    assert "r0" in by_entry[loopa_header].saves
    assert (
        by_entry[loopb_header].total_bytes
        < by_entry[loopa_header].total_bytes
    )
