"""Unit tests for the from-scratch k-means."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis.kmeans import kmeans


def test_two_obvious_clusters():
    points = [(0.0, 0.0), (0.1, 0.1), (10.0, 10.0), (10.1, 9.9)]
    result = kmeans(points, 2, seed=1)
    assert result.labels[0] == result.labels[1]
    assert result.labels[2] == result.labels[3]
    assert result.labels[0] != result.labels[2]


def test_deterministic_given_seed():
    points = [(float(i % 7), float(i % 3)) for i in range(50)]
    a = kmeans(points, 3, seed=42)
    b = kmeans(points, 3, seed=42)
    assert np.array_equal(a.labels, b.labels)
    assert np.allclose(a.centroids, b.centroids)


def test_k_equals_n():
    points = [(0.0,), (5.0,), (10.0,)]
    result = kmeans(points, 3, seed=0)
    assert sorted(result.labels) == [0, 1, 2]
    assert result.inertia == pytest.approx(0.0)


def test_k_one_centroid_is_mean():
    points = [(1.0, 2.0), (3.0, 4.0)]
    result = kmeans(points, 1, seed=0)
    assert np.allclose(result.centroids[0], [2.0, 3.0])


def test_identical_points():
    points = [(1.0, 1.0)] * 6
    result = kmeans(points, 2, seed=0)
    assert len(result.labels) == 6
    assert np.isfinite(result.inertia)


def test_no_empty_clusters():
    # An outlier far from a tight cluster: both clusters stay populated.
    points = [(0.0, 0.0)] * 9 + [(100.0, 100.0)]
    result = kmeans(points, 2, seed=3)
    assert set(result.labels) == {0, 1}


def test_one_dimensional_input():
    result = kmeans([0.0, 0.1, 9.9, 10.0], 2, seed=0)
    assert result.labels[0] == result.labels[1]
    assert result.labels[2] == result.labels[3]


def test_inertia_nonincreasing_in_k():
    points = [(float(i), float(i * i % 11)) for i in range(30)]
    inertias = [kmeans(points, k, seed=5).inertia for k in (1, 2, 4, 8)]
    assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))


@pytest.mark.parametrize("k", [0, 5])
def test_bad_k_rejected(k):
    with pytest.raises(AnalysisError):
        kmeans([(0.0,), (1.0,)], k)


def test_empty_input_rejected():
    with pytest.raises(AnalysisError):
        kmeans([], 1)
