"""Unit tests for the from-scratch k-means."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis.kmeans import kmeans


def test_two_obvious_clusters():
    points = [(0.0, 0.0), (0.1, 0.1), (10.0, 10.0), (10.1, 9.9)]
    result = kmeans(points, 2, seed=1)
    assert result.labels[0] == result.labels[1]
    assert result.labels[2] == result.labels[3]
    assert result.labels[0] != result.labels[2]


def test_deterministic_given_seed():
    points = [(float(i % 7), float(i % 3)) for i in range(50)]
    a = kmeans(points, 3, seed=42)
    b = kmeans(points, 3, seed=42)
    assert np.array_equal(a.labels, b.labels)
    assert np.allclose(a.centroids, b.centroids)


def test_k_equals_n():
    points = [(0.0,), (5.0,), (10.0,)]
    result = kmeans(points, 3, seed=0)
    assert sorted(result.labels) == [0, 1, 2]
    assert result.inertia == pytest.approx(0.0)


def test_k_one_centroid_is_mean():
    points = [(1.0, 2.0), (3.0, 4.0)]
    result = kmeans(points, 1, seed=0)
    assert np.allclose(result.centroids[0], [2.0, 3.0])


def test_identical_points():
    points = [(1.0, 1.0)] * 6
    result = kmeans(points, 2, seed=0)
    assert len(result.labels) == 6
    assert np.isfinite(result.inertia)


def test_no_empty_clusters():
    # An outlier far from a tight cluster: both clusters stay populated.
    points = [(0.0, 0.0)] * 9 + [(100.0, 100.0)]
    result = kmeans(points, 2, seed=3)
    assert set(result.labels) == {0, 1}


def test_one_dimensional_input():
    result = kmeans([0.0, 0.1, 9.9, 10.0], 2, seed=0)
    assert result.labels[0] == result.labels[1]
    assert result.labels[2] == result.labels[3]


def test_inertia_nonincreasing_in_k():
    points = [(float(i), float(i * i % 11)) for i in range(30)]
    inertias = [kmeans(points, k, seed=5).inertia for k in (1, 2, 4, 8)]
    assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))


@pytest.mark.parametrize("k", [0, 5])
def test_bad_k_rejected(k):
    with pytest.raises(AnalysisError):
        kmeans([(0.0,), (1.0,)], k)


def test_empty_input_rejected():
    with pytest.raises(AnalysisError):
        kmeans([], 1)


# -- vectorized Lloyd step vs the reference loop ------------------------------


def _reference_kmeans(points, k, seed=0, max_iterations=100):
    """The pre-vectorization Lloyd loop, kept verbatim as the oracle.

    The production implementation replaced the per-centroid distance
    loop with one broadcast tensor and the per-cluster boolean masks
    with a stable argsort, both chosen to preserve the exact reduction
    order — so results must match *bit for bit*, not just approximately.
    """
    import random

    from repro.analysis.kmeans import KMeansResult, _seed_plusplus

    data = np.asarray(points, dtype=float)
    if data.ndim == 1:
        data = data.reshape(-1, 1)
    n = len(data)
    rng = random.Random(seed)
    centroids = _seed_plusplus(data, k, rng)
    labels = np.zeros(n, dtype=int)

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        distances = np.stack(
            [np.sum((data - c) ** 2, axis=1) for c in centroids], axis=1
        )
        new_labels = np.argmin(distances, axis=1)
        own_distance = distances[np.arange(n), new_labels].copy()
        for cluster in range(k):
            if not np.any(new_labels == cluster):
                worst = int(np.argmax(own_distance))
                new_labels[worst] = cluster
                own_distance[worst] = -np.inf
        moved = bool(np.any(new_labels != labels)) or iterations == 1
        labels = new_labels
        new_centroids = np.array(
            [
                data[labels == cluster].mean(axis=0)
                if np.any(labels == cluster)
                else centroids[cluster]
                for cluster in range(k)
            ]
        )
        converged = np.allclose(new_centroids, centroids) and not moved
        centroids = new_centroids
        if converged:
            break

    inertia = float(np.sum((data - centroids[labels]) ** 2))
    return KMeansResult(labels, centroids, inertia, iterations)


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
@pytest.mark.parametrize("n,k", [(12, 2), (50, 2), (200, 3), (301, 8)])
def test_vectorized_matches_reference_exactly(seed, n, k):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 2)) * rng.uniform(0.5, 20.0)
    fast = kmeans(points, k, seed=seed)
    slow = _reference_kmeans(points, k, seed=seed)
    assert np.array_equal(fast.labels, slow.labels)
    assert np.array_equal(fast.centroids, slow.centroids)
    assert fast.inertia == slow.inertia
    assert fast.iterations == slow.iterations


def test_vectorized_matches_reference_with_empty_reseeds():
    # Duplicated points force empty-cluster re-seeding down both paths.
    points = [(0.0, 0.0)] * 10 + [(5.0, 5.0)] * 3 + [(9.0, 1.0)]
    for seed in range(6):
        fast = kmeans(points, 4, seed=seed)
        slow = _reference_kmeans(points, 4, seed=seed)
        assert np.array_equal(fast.labels, slow.labels)
        assert np.array_equal(fast.centroids, slow.centroids)
