"""Unit tests for static reuse-distance estimation."""

import pytest

from repro.isa import ProgramBuilder
from repro.program import build_cfg
from repro.analysis.reuse_distance import (
    NominalCache,
    access_reuse_distance,
    block_reuse_profile,
    miss_probability,
)


def _block_with(build):
    pb = ProgramBuilder("t")
    pb.region("BIG", 64 << 20)
    pb.region("SMALL", 4 << 10)
    with pb.proc("main") as b:
        build(b)
        b.ret()
    program = pb.build()
    cfg = build_cfg(program["main"])
    return cfg.blocks[0], program


def test_scalar_reuse_distance_small():
    block, program = _block_with(
        lambda b: b.load("r1", "SMALL", offset=0).load("r2", "SMALL", offset=8)
    )
    cache = NominalCache()
    rd = access_reuse_distance(block.instrs[0].mem, block, program, cache)
    # Two scalars in the same line -> tiny reuse distance.
    assert rd <= 2


def test_streaming_reuse_distance_is_working_set():
    block, program = _block_with(
        lambda b: b.load("r1", "BIG", index="r2", stride=64)
    )
    cache = NominalCache()
    rd = access_reuse_distance(block.instrs[0].mem, block, program, cache)
    assert rd == pytest.approx((64 << 20) / cache.line_size)


def test_hot_fraction_shrinks_reuse_distance():
    pb = ProgramBuilder("t")
    pb.region("H", 64 << 20, hot_fraction=0.001)
    with pb.proc("main") as b:
        b.load("r1", "H", index="r2", stride=64)
        b.ret()
    program = pb.build()
    block = build_cfg(program["main"]).blocks[0]
    cache = NominalCache()
    rd = access_reuse_distance(block.instrs[0].mem, block, program, cache)
    assert rd < cache.capacity_lines / 2  # Hot set fits: treated as hits.


def test_miss_probability_monotone():
    cache = NominalCache(capacity_lines=1024)
    probabilities = [
        miss_probability(rd, cache) for rd in (1, 256, 512, 1024, 2048, 8192)
    ]
    assert probabilities[0] == 0.0
    assert probabilities[-1] == 1.0
    assert all(a <= b + 1e-12 for a, b in zip(probabilities, probabilities[1:]))


def test_miss_probability_edges():
    cache = NominalCache(capacity_lines=1000)
    assert miss_probability(0, cache) == 0.0
    assert miss_probability(499, cache) == 0.0
    assert miss_probability(2001, cache) == 1.0
    mid = miss_probability(1000, cache)
    assert 0.0 < mid < 1.0


def test_block_profile_compute_only():
    block, program = _block_with(
        lambda b: [b.add("r1", "r1", 1) for _ in range(5)]
    )
    profile = block_reuse_profile(block, program)
    assert profile.accesses == 0
    assert profile.expected_misses == 0.0
    assert profile.miss_fraction == 0.0


def test_block_profile_streaming_has_misses():
    def build(b):
        for _ in range(4):
            b.load("r1", "BIG", index="r2", stride=64)

    block, program = _block_with(build)
    profile = block_reuse_profile(block, program)
    assert profile.accesses == 4
    assert profile.expected_misses == pytest.approx(4.0)


def test_stack_ops_count_as_hot_accesses():
    block, program = _block_with(lambda b: b.push("r1").pop("r1"))
    profile = block_reuse_profile(block, program)
    assert profile.accesses == 2
    assert profile.expected_misses == 0.0
