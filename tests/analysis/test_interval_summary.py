"""Unit tests for interval summarization."""

from repro.analysis import StaticBlockTyper, annotate_program, summarize_intervals
from repro.analysis.block_typing import BlockTyping
from repro.program import build_cfg


def _annotated(program, typing=None):
    typing = typing or StaticBlockTyper(num_types=2).type_blocks(program)
    return annotate_program(program, typing)


def test_every_block_owned_by_one_interval(phased_program):
    program, _ = phased_program
    aprog = _annotated(program)
    acfg = aprog["main"]
    summary = summarize_intervals(acfg)
    reachable = set(acfg.cfg.reverse_postorder())
    assert set(summary.owner) == reachable


def test_dominant_type_matches_uniform_typing(loop_program):
    # Type every block the same: all intervals must get that type.
    cfg = build_cfg(loop_program["main"])
    typing = BlockTyping(
        {b.uid: 1 for b in cfg.blocks}, 2
    )
    aprog = annotate_program(loop_program, typing)
    summary = summarize_intervals(aprog["main"])
    for interval in summary.intervals:
        assert interval.dominant_type == 1
        assert interval.strength == 1.0


def test_cycle_weight_boosts_loop_type(loop_program):
    """A small loop body of type 0 outweighs larger straight-line type-1
    code in the same interval because loop nodes are boosted."""
    cfg = build_cfg(loop_program["main"])
    loop_header = cfg.back_edges()[0].dst
    types = {}
    for block in cfg.blocks:
        types[block.uid] = 0 if block.index == loop_header else 1
    aprog = annotate_program(loop_program, BlockTyping(types, 2))
    summary = summarize_intervals(aprog["main"], cycle_weight=10.0)
    owner = summary.interval_of(loop_header)
    assert summary.intervals[owner].dominant_type == 0


def test_untyped_interval_has_none(straightline_program):
    aprog = annotate_program(
        straightline_program, BlockTyping({}, 2)
    )
    summary = summarize_intervals(aprog["main"])
    assert all(i.dominant_type is None for i in summary.intervals)
    assert all(i.strength == 0.0 for i in summary.intervals)


def test_strength_between_zero_and_one(phased_program):
    program, _ = phased_program
    summary = summarize_intervals(_annotated(program)["main"])
    for interval in summary.intervals:
        assert 0.0 <= interval.strength <= 1.0


def test_size_counts_instructions(phased_program):
    program, _ = phased_program
    acfg = _annotated(program)["main"]
    summary = summarize_intervals(acfg)
    total = sum(i.size_instrs for i in summary.intervals)
    reachable = set(acfg.cfg.reverse_postorder())
    expected = sum(
        len(b) for b in acfg.cfg.blocks if b.index in reachable
    )
    assert total == expected
