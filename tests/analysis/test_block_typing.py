"""Unit tests for static and profile block typing plus error injection."""

import pytest

from repro.errors import AnalysisError
from repro.analysis import (
    ProfileBlockTyper,
    StaticBlockTyper,
    inject_clustering_error,
)
from repro.analysis.block_typing import BlockTyping
from repro.sim import core2quad_amp, symmetric_machine


def test_static_typing_separates_phases(phased_program):
    program, _ = phased_program
    typing = StaticBlockTyper(num_types=2).type_blocks(program)
    assert typing.num_types == 2
    # The compute body block and memory body block get different types.
    types = set(typing.types.values())
    assert types == {0, 1}


def test_static_typing_deterministic(phased_program):
    program, _ = phased_program
    a = StaticBlockTyper(num_types=2, seed=3).type_blocks(program)
    b = StaticBlockTyper(num_types=2, seed=3).type_blocks(program)
    assert a.types == b.types


def test_type_zero_is_memory_bound(phased_program):
    """Cluster id 0 is normalised to the memory-bound cluster."""
    program, _ = phased_program
    typing = StaticBlockTyper(num_types=2).type_blocks(program)
    machine = core2quad_amp()
    profile = ProfileBlockTyper(machine, 0.05).type_blocks(program)
    # Find the big streaming block (profile type 0) and check static
    # agrees on the id convention.
    memory_blocks = [u for u, t in profile.types.items() if t == 0]
    assert memory_blocks
    agreements = sum(1 for u in memory_blocks if typing.types.get(u) == 0)
    assert agreements >= len(memory_blocks) / 2


def test_profile_typing_memory_vs_compute(phased_program):
    program, _ = phased_program
    machine = core2quad_amp()
    typing = ProfileBlockTyper(machine, 0.05).type_blocks(program)
    assert 0 in typing.types.values()
    assert 1 in typing.types.values()


def test_profile_typing_needs_asymmetry(phased_program):
    program, _ = phased_program
    with pytest.raises(AnalysisError, match="two core types"):
        ProfileBlockTyper(symmetric_machine(), 0.05).type_blocks(program)


def test_error_injection_zero_is_identity(phased_program):
    program, _ = phased_program
    typing = StaticBlockTyper().type_blocks(program)
    injected = inject_clustering_error(typing, 0.0)
    assert injected.types == typing.types


def test_error_injection_flips_exact_fraction(phased_program):
    program, _ = phased_program
    typing = StaticBlockTyper().type_blocks(program)
    injected = inject_clustering_error(typing, 0.25, seed=9)
    flipped = sum(
        1 for u in typing.types if typing.types[u] != injected.types[u]
    )
    assert flipped == round(len(typing.types) * 0.25)


def test_error_injection_full_flip(phased_program):
    program, _ = phased_program
    typing = StaticBlockTyper().type_blocks(program)
    injected = inject_clustering_error(typing, 1.0)
    assert all(
        injected.types[u] == 1 - typing.types[u] for u in typing.types
    )


def test_error_injection_deterministic(phased_program):
    program, _ = phased_program
    typing = StaticBlockTyper().type_blocks(program)
    a = inject_clustering_error(typing, 0.3, seed=4)
    b = inject_clustering_error(typing, 0.3, seed=4)
    assert a.types == b.types


def test_error_injection_bad_fraction(phased_program):
    program, _ = phased_program
    typing = StaticBlockTyper().type_blocks(program)
    with pytest.raises(AnalysisError):
        inject_clustering_error(typing, 1.5)


def test_type_of_untyped_block_is_none():
    typing = BlockTyping({"main#0": 1}, 2)

    class FakeBlock:
        uid = "main#99"

    assert typing.type_of(FakeBlock()) is None
