"""Unit tests for slot-based workloads."""

import pytest

from repro.errors import WorkloadError
from repro.instrument import LoopStrategy
from repro.sim import core2quad_amp
from repro.tuning import PhaseTuningRuntime
from repro.workloads import Workload, WorkloadRun


def test_random_workload_deterministic():
    a = Workload.random(6, seed=3)
    b = Workload.random(6, seed=3)
    assert a.queues == b.queues
    c = Workload.random(6, seed=4)
    assert c.queues != a.queues


def test_queues_one_per_slot():
    workload = Workload.random(18, seed=0, queue_length=32)
    assert len(workload.queues) == 18
    assert all(len(q) == 32 for q in workload.queues)


def test_restricted_benchmark_pool():
    workload = Workload.random(
        4, seed=1, benchmarks=("164.gzip", "473.astar")
    )
    assert workload.benchmark_names() <= {"164.gzip", "473.astar"}


def test_zero_slots_rejected():
    with pytest.raises(WorkloadError, match="at least one slot"):
        Workload.random(0)


def test_baseline_run_completes_jobs(machine):
    workload = Workload.random(
        4, seed=2, benchmarks=("164.gzip", "175.vpr", "183.equake")
    )
    run = WorkloadRun(workload, machine)
    result = run.run(30.0)
    assert result.completed
    # Slots stay constant: completions triggered replacements.
    assert all(p.completion is not None for p in result.completed)
    assert len(result.running) >= 1


def test_slot_replacement_follows_queue(machine):
    workload = Workload.random(
        2, seed=5, benchmarks=("164.gzip", "473.astar")
    )
    run = WorkloadRun(workload, machine)
    result = run.run(25.0)
    by_slot = {}
    for p in sorted(result.completed, key=lambda p: p.completion):
        by_slot.setdefault(p.slot, []).append(p.name)
    for slot, names in by_slot.items():
        assert names == workload.queues[slot][: len(names)]


def test_queue_exhaustion_raises(machine):
    workload = Workload.random(
        1, seed=0, queue_length=1, benchmarks=("164.gzip",)
    )
    run = WorkloadRun(workload, machine)
    with pytest.raises(WorkloadError, match="ran out of queued jobs"):
        run.run(100.0)


def test_tuned_run_uses_marks(machine):
    workload = Workload.random(
        4, seed=7, benchmarks=("183.equake", "172.mgrid")
    )
    run = WorkloadRun(workload, machine, LoopStrategy(45))
    result = run.run(
        20.0, runtime=PhaseTuningRuntime(machine, 0.12)
    )
    fired = sum(p.stats.mark_firings for p in result.all_processes)
    assert fired > 0


def test_isolated_seconds_exposed(machine):
    workload = Workload.random(2, seed=0, benchmarks=("164.gzip",))
    run = WorkloadRun(workload, machine)
    assert run.isolated_seconds("164.gzip") > 0
