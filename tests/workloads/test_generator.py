"""Unit tests for the random program generator."""

from repro.program import validate_program
from repro.workloads.generator import random_program


def test_generated_programs_are_valid():
    for seed in range(12):
        program = random_program(seed=seed)
        validate_program(program)  # Warnings allowed, no exceptions.


def test_deterministic_per_seed():
    a = random_program(seed=5)
    b = random_program(seed=5)
    assert a.size_bytes == b.size_bytes
    for name in a.procedures:
        assert [str(i) for i in a[name].code] == [str(i) for i in b[name].code]


def test_different_seeds_differ():
    sizes = {random_program(seed=s).size_bytes for s in range(8)}
    assert len(sizes) > 1


def test_procedure_count_honoured():
    program = random_program(seed=0, procedures=5)
    assert len(program.procedures) == 6  # main + 5 helpers.


def test_generated_programs_analyzable():
    from repro.analysis import StaticBlockTyper, annotate_program, summarize_loops

    for seed in (1, 2, 3):
        program = random_program(seed=seed)
        typing = StaticBlockTyper().type_blocks(program)
        summary = summarize_loops(annotate_program(program, typing))
        assert summary.proc_summaries
