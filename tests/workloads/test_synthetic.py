"""Unit tests for synthetic benchmark construction."""

import pytest

from repro.errors import WorkloadError
from repro.program import build_cfg, find_loops, validate_program
from repro.sim import TraceGenerator, core2quad_amp
from repro.workloads.synthetic import (
    KernelSpec,
    PhaseSpec,
    build_benchmark,
    cache_kernel,
    compute_kernel,
    mixed_kernel,
    stream_kernel,
)


def test_benchmark_program_validates():
    bench = build_benchmark(
        "t",
        [
            PhaseSpec("a", compute_kernel(), 100),
            PhaseSpec("b", stream_kernel(), 100),
        ],
        outer_trips=3,
    )
    assert validate_program(bench.program) == []


def test_trip_counts_recorded():
    bench = build_benchmark(
        "t", [PhaseSpec("a", compute_kernel(), 123)], outer_trips=4
    )
    assert bench.spec.trip_counts[("main", "a")] == 123
    assert bench.spec.trip_counts[("main", "outer")] == 4


def test_phase_loops_exist():
    bench = build_benchmark(
        "t",
        [PhaseSpec("a", compute_kernel(), 10), PhaseSpec("b", stream_kernel(), 10)],
        outer_trips=2,
    )
    cfg = build_cfg(bench.program["main"])
    loops = find_loops(cfg)
    # a, b, and the outer loop.
    assert len(loops) == 3


def test_helper_phases_emitted_as_procedures():
    bench = build_benchmark(
        "t",
        [PhaseSpec("a", compute_kernel(), 10), PhaseSpec("h", stream_kernel(), 10)],
        outer_trips=2,
        helpers={"h": "do_h"},
    )
    assert "do_h" in bench.program
    assert bench.spec.trip_counts[("do_h", "h")] == 10
    assert validate_program(bench.program) == []


def test_cold_procs_add_bulk():
    slim = build_benchmark(
        "t", [PhaseSpec("a", compute_kernel(), 10)], cold_procs=0
    )
    bulky = build_benchmark(
        "t", [PhaseSpec("a", compute_kernel(), 10)], cold_procs=10
    )
    assert bulky.program.size_bytes > 2 * slim.program.size_bytes


def test_cold_procs_deterministic():
    a = build_benchmark("same", [PhaseSpec("a", compute_kernel(), 10)])
    b = build_benchmark("same", [PhaseSpec("a", compute_kernel(), 10)])
    assert a.program.size_bytes == b.program.size_bytes
    assert [str(i) for i in a.program["__cold0"].code] == [
        str(i) for i in b.program["__cold0"].code
    ]


def test_empty_phases_rejected():
    with pytest.raises(WorkloadError, match="at least one phase"):
        build_benchmark("t", [])


def test_duplicate_labels_rejected():
    with pytest.raises(WorkloadError, match="duplicate phase labels"):
        build_benchmark(
            "t",
            [PhaseSpec("a", compute_kernel(), 1), PhaseSpec("a", stream_kernel(), 1)],
        )


def test_kernel_instruction_counts():
    kernel = KernelSpec(fp_ops=5, int_ops=3, table_loads=2, branchy=False)
    assert kernel.instructions_per_iteration() == 10 + 3 + 4


def test_canonical_kernels_span_the_spectrum(machine):
    """compute < cache < mixed < stream in stall fraction on fast."""
    from repro.sim.cost_model import CostModel

    model = CostModel(machine)
    fast = machine.core_types()[0]

    def stall_fraction(kernel):
        bench = build_benchmark(
            "probe", [PhaseSpec("k", kernel, 10)], cold_procs=0
        )
        generator = TraceGenerator(machine)
        trace = generator.generate(bench.program, bench.spec)
        total = trace.total_cycles("fast")
        stall = sum(
            s.cost.stall["fast"] * s.iterations for s in trace.segments()
        )
        return stall / total

    fractions = [
        stall_fraction(k)
        for k in (compute_kernel(), cache_kernel(), mixed_kernel(), stream_kernel())
    ]
    assert fractions == sorted(fractions)
    assert fractions[0] < 0.05
    assert fractions[-1] > 0.5
