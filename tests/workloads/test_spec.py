"""Unit tests for the SPEC-like benchmark suite."""

import pytest

from repro.errors import WorkloadError
from repro.instrument import LoopStrategy, instrument
from repro.program import validate_program
from repro.sim import TraceGenerator, core2quad_amp
from repro.workloads.spec import (
    SPEC_BENCHMARKS,
    TABLE1_REFERENCE,
    scaled_runtime,
    spec_benchmark,
    spec_suite,
)


def test_all_fifteen_table1_rows_present():
    assert len(SPEC_BENCHMARKS) == 15
    assert set(SPEC_BENCHMARKS) == set(TABLE1_REFERENCE)


def test_suite_builds_and_validates():
    for bench in spec_suite():
        assert validate_program(bench.program) == []


def test_benchmarks_cached():
    assert spec_benchmark("401.bzip2") is spec_benchmark("401.bzip2")


def test_unknown_name_rejected():
    with pytest.raises(WorkloadError, match="unknown SPEC-like benchmark"):
        spec_benchmark("999.nope")


def test_scaled_runtime_bounds():
    for name in SPEC_BENCHMARKS:
        assert 1.8 <= scaled_runtime(name) <= 60.0
    # Short codes hit the floor, the giants hit the cap.
    assert scaled_runtime("164.gzip") == 1.8
    assert scaled_runtime("410.bwaves") == 60.0


def test_isolated_runtimes_match_targets(machine):
    generator = TraceGenerator(machine)
    for name in ("401.bzip2", "172.mgrid", "183.equake"):
        bench = spec_benchmark(name)
        trace = generator.generate(bench.program, bench.spec)
        isolated = generator.isolated_seconds(trace)
        assert isolated == pytest.approx(scaled_runtime(name), rel=0.15)


def test_relative_runtime_ordering(machine):
    """Scaled runtimes preserve Table 1's ordering among uncapped rows."""
    generator = TraceGenerator(machine)

    def isolated(name):
        bench = spec_benchmark(name)
        return generator.isolated_seconds(
            generator.generate(bench.program, bench.spec)
        )

    assert isolated("183.equake") < isolated("172.mgrid") < isolated("401.bzip2")


def test_gemsfdtd_single_phase_type(machine):
    """459.GemsFDTD has one phase type: Loop[45] leaves <= 1 mark and the
    announced types never alternate (Table 1: 0 switches)."""
    bench = spec_benchmark("459.GemsFDTD")
    inst = instrument(bench.program, LoopStrategy(45))
    assert len({m.phase_type for m in inst.marks}) <= 1


def test_astar_has_no_phases():
    """473.astar's loops sit below the marking threshold: no marks."""
    bench = spec_benchmark("473.astar")
    inst = instrument(bench.program, LoopStrategy(45))
    assert inst.marks == []


def test_equake_alternates_most(machine):
    """183.equake has the highest phase-change rate of the suite."""
    generator = TraceGenerator(machine)

    def alternations_per_second(name):
        bench = spec_benchmark(name)
        inst = instrument(bench.program, LoopStrategy(45))
        trace = generator.generate(inst, bench.spec)
        firings = 0.0
        stack = list(trace.nodes)
        reps = []

        def count(nodes, multiplier):
            total = 0.0
            for node in nodes:
                if hasattr(node, "children"):
                    total += count(node.children, multiplier * node.count)
                else:
                    total += multiplier * len(node.entry_marks)
            return total

        firings = count(trace.nodes, 1.0)
        return firings / generator.isolated_seconds(trace)

    equake = alternations_per_second("183.equake")
    others = [
        alternations_per_second(n)
        for n in ("401.bzip2", "172.mgrid", "171.swim")
    ]
    assert equake > max(others)


def test_suite_covers_the_boundedness_spectrum(machine):
    """The suite has both clearly compute-bound and clearly memory-bound
    members (needed for the tuning effect to exist at all)."""
    generator = TraceGenerator(machine)
    fractions = {}
    for name in SPEC_BENCHMARKS:
        bench = spec_benchmark(name)
        trace = generator.generate(bench.program, bench.spec)
        total = trace.total_cycles("fast")
        stall = total - trace.total_cycles("slow")  # DRAM-scaled part.
        fractions[name] = stall / total
    assert max(fractions.values()) > 0.2   # Strongly memory-bound exists.
    assert min(fractions.values()) < 0.05  # Strongly compute-bound exists.
