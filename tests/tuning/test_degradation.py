"""Unit tests for the hardened runtime's degradation ladder."""

import pytest

from repro.sim import core2quad_amp
from repro.sim.cost_model import CostVector
from repro.sim.counters import CounterBank
from repro.sim.faults import DvfsEvent, FaultInjector, FaultPlan, HotplugEvent
from repro.sim.process import Segment, SimProcess, Trace
from repro.tuning.runtime import FREE, DegradationEvent, PhaseTuningRuntime


def _proc(machine, pid=1):
    vector = CostVector.zero(machine.core_types())
    vector.instrs = 1.0
    trace = Trace((Segment("s", None, 1.0, vector),))
    return SimProcess(pid, "p", trace, machine.all_cores_mask)


def _runtime(machine, delta=0.1, **kw):
    kw.setdefault("monitor_noise", 0.0)
    kw.setdefault("min_sample_cycles", 100.0)
    return PhaseTuningRuntime(machine, delta, **kw)


def _feed_sample(proc, ctype_name, instrs, cycles):
    proc.stats.record(ctype_name, instrs, cycles)


# -- constructor validation -----------------------------------------------------


def test_hardening_knobs_validated(machine):
    with pytest.raises(ValueError, match="samples_per_type"):
        _runtime(machine, samples_per_type=0)
    with pytest.raises(ValueError, match="max_monitor_retries"):
        _runtime(machine, max_monitor_retries=0)
    with pytest.raises(ValueError, match="max_affinity_failures"):
        _runtime(machine, max_affinity_failures=0)


def test_attach_faults_wires_measurement_path(machine):
    runtime = _runtime(machine)
    injector = FaultInjector(FaultPlan(), machine)
    runtime.attach_faults(injector)
    assert runtime.faults is injector
    assert runtime.counters.injector is injector
    assert runtime.monitor.injector is injector


# -- rung 1: bounded counter retry ----------------------------------------------


def test_counter_starvation_degrades_to_free(machine):
    bank = CounterBank(len(machine), slots_per_core=0)  # nothing to grab
    runtime = _runtime(machine, counters=bank, max_monitor_retries=3)
    proc = _proc(machine)
    core = machine.cores[0]

    for t in range(2):
        action = runtime.on_mark(proc, 0, 1, core, float(t))
        assert action.affinity is None
    # Third failed acquisition exhausts the bound.
    runtime.on_mark(proc, 0, 1, core, 2.0)
    state = proc.tuner_state[1]
    assert state.decided is FREE
    assert runtime.degraded_decisions == 1
    kinds = [ev.kind for ev in runtime.degradations_for(proc.pid)]
    assert kinds == ["counter-starved"]


def test_unbounded_retry_by_default(machine):
    bank = CounterBank(len(machine), slots_per_core=0)
    runtime = _runtime(machine, counters=bank)
    proc = _proc(machine)
    core = machine.cores[0]
    for t in range(50):
        runtime.on_mark(proc, 0, 1, core, float(t))
    assert proc.tuner_state[1].decided is None  # still exploring
    assert runtime.degraded_decisions == 0


def test_successful_open_resets_failure_count(machine):
    bank = CounterBank(len(machine), slots_per_core=1)
    runtime = _runtime(machine, counters=bank, max_monitor_retries=3)
    proc = _proc(machine)
    other = _proc(machine, pid=2)
    core = machine.cores[0]

    # Two failures while another process hogs the slot.
    session = bank.try_acquire(core.cid, other.pid, 0.0, 0.0)
    runtime.on_mark(proc, 0, 1, core, 0.0)
    runtime.on_mark(proc, 0, 1, core, 1.0)
    assert proc.tuner_state[1].open_failures == 2
    bank.release(session)
    # A successful open wipes the count: no degradation afterwards.
    runtime.on_mark(proc, 0, 1, core, 2.0)
    assert proc.tuner_state[1].open_failures == 0
    assert proc.tuner_state[1].decided is None


# -- rung 2: median-of-k outlier rejection --------------------------------------


def test_median_of_k_rejects_corrupt_sample(machine):
    runtime = _runtime(machine, samples_per_type=3)
    proc = _proc(machine)
    core = machine.cores[0]

    readings = (0.2, 4.0, 0.21)  # middle one is wildly corrupt
    for t, ipc in enumerate(readings):
        action = runtime.on_mark(proc, 0, 1, core, float(t))
        assert action.affinity is None  # still collecting on this type
        _feed_sample(proc, "fast", ipc * 10_000.0, 10_000.0)
    runtime.on_mark(proc, 0, 1, core, 3.0)

    state = proc.tuner_state[1]
    assert state.samples["fast"] == pytest.approx(0.21)
    assert state.raw_samples["fast"] == [pytest.approx(r) for r in readings]


def test_k_equal_one_keeps_single_sample_path(machine):
    runtime = _runtime(machine, samples_per_type=1)
    proc = _proc(machine)
    core = machine.cores[0]
    runtime.on_mark(proc, 0, 1, core, 0.0)
    _feed_sample(proc, "fast", 2000.0, 10_000.0)
    runtime.on_mark(proc, 0, 1, core, 1.0)
    state = proc.tuner_state[1]
    assert state.samples["fast"] == pytest.approx(0.2)
    assert state.raw_samples == {}


def test_nonfinite_sample_rejected(machine):
    runtime = _runtime(machine)
    runtime.monitor.injector = type(
        "Zero", (), {"sample_read_factor": staticmethod(lambda: 0.0)}
    )()
    proc = _proc(machine)
    core = machine.cores[0]
    runtime.on_mark(proc, 0, 1, core, 0.0)
    _feed_sample(proc, "fast", 2000.0, 10_000.0)
    runtime.on_mark(proc, 0, 1, core, 1.0)
    assert runtime.rejected_samples == 1
    assert proc.tuner_state[1].samples == {}
    assert [ev.kind for ev in runtime.degradation_log] == ["corrupt-sample"]


# -- rung 3: epoch-based re-exploration -----------------------------------------


def _decide(runtime, proc, machine, phase_type=1):
    """Drive (proc, phase_type) to a decided state."""
    fast, slow = machine.cores[0], machine.cores[2]
    runtime.on_mark(proc, 0, phase_type, fast, 0.0)
    _feed_sample(proc, "fast", 5000.0, 10_000.0)
    action = runtime.on_mark(proc, 0, phase_type, fast, 1.0)
    proc.affinity = action.affinity
    runtime.on_mark(proc, 0, phase_type, slow, 2.0)
    _feed_sample(proc, "slow", 1000.0, 10_000.0)
    runtime.on_mark(proc, 0, phase_type, slow, 3.0)
    assert proc.tuner_state[phase_type].decided is not None


def test_machine_event_invalidates_decision(machine):
    runtime = _runtime(machine, delta=0.05)
    proc = _proc(machine)
    _decide(runtime, proc, machine)
    decided = proc.tuner_state[1].decided

    runtime.on_machine_event(DvfsEvent(4.0, 0, 0.5), 4.0)
    assert runtime.machine_epoch == 1
    # Next mark discards the stale decision and explores afresh.
    runtime.on_mark(proc, 0, 1, machine.cores[2], 5.0)
    state = proc.tuner_state[1]
    assert state.decided is None
    assert state.samples == {}
    assert runtime.invalidations == 1
    kinds = [ev.kind for ev in runtime.degradation_log]
    assert kinds == ["dvfs", "re-explore"]
    assert decided is not None


def test_hotplug_event_logged_machine_wide(machine):
    runtime = _runtime(machine)
    runtime.on_machine_event(HotplugEvent(1.0, 3, online=False), 1.0)
    assert runtime.machine_epoch == 1
    event = runtime.degradation_log[0]
    assert event.kind == "hotplug"
    assert event.pid is None


def test_dvfs_rescales_reference_frequency(machine):
    runtime = _runtime(machine)
    nominal_fast = runtime._freq_by_name["fast"]
    # Both fast cores clocked to half speed; slow cores untouched.
    runtime.on_machine_event(
        DvfsEvent(1.0, 0, 0.5), 1.0, freq_scales=(0.5, 0.5, 1.0, 1.0)
    )
    assert runtime._freq_by_name["fast"] == pytest.approx(0.5 * nominal_fast)
    assert runtime._ref_freq == pytest.approx(
        max(runtime._freq_by_name.values())
    )


def test_fresh_states_do_not_invalidate(machine):
    """Epoch bookkeeping must not disturb normal fault-free tuning."""
    runtime = _runtime(machine, delta=0.05)
    proc = _proc(machine)
    _decide(runtime, proc, machine)
    assert runtime.invalidations == 0
    assert runtime.degradation_log == []


# -- rung 4: affinity-failure fallback ------------------------------------------


def test_affinity_failures_trigger_stock_fallback(machine):
    runtime = _runtime(machine, max_affinity_failures=2)
    proc = _proc(machine)
    error = OSError("EPERM")

    runtime.on_affinity_result(proc, False, error, 1.0)
    assert proc.pid not in runtime._affinity_blocked
    runtime.on_affinity_result(proc, False, error, 2.0)
    assert proc.pid in runtime._affinity_blocked
    assert runtime.affinity_errors == 2
    kinds = [ev.kind for ev in runtime.degradations_for(proc.pid)]
    assert kinds == ["affinity-fallback"]

    # First mark after the fallback: one best-effort mask restore.
    proc.affinity = frozenset({0, 1})
    action = runtime.on_mark(proc, 0, 1, machine.cores[0], 3.0)
    assert action.affinity == machine.all_cores_mask
    # Afterwards the runtime stops steering this process entirely.
    action = runtime.on_mark(proc, 0, 1, machine.cores[0], 4.0)
    assert action.affinity is None
    assert action.extra_cycles == 0.0


def test_affinity_success_resets_failure_streak(machine):
    runtime = _runtime(machine, max_affinity_failures=2)
    proc = _proc(machine)
    runtime.on_affinity_result(proc, False, OSError(), 1.0)
    runtime.on_affinity_result(proc, True, None, 2.0)
    runtime.on_affinity_result(proc, False, OSError(), 3.0)
    assert proc.pid not in runtime._affinity_blocked
    assert runtime.affinity_errors == 2


# -- the log --------------------------------------------------------------------


def test_degradations_for_filters_by_pid(machine):
    runtime = _runtime(machine)
    a, b = _proc(machine, pid=1), _proc(machine, pid=2)
    runtime._log_degradation(1.0, a.pid, 0, "counter-starved")
    runtime._log_degradation(2.0, b.pid, 1, "re-explore")
    runtime._log_degradation(3.0, None, None, "hotplug")
    assert [ev.pid for ev in runtime.degradations_for(1)] == [1]
    assert [ev.pid for ev in runtime.degradations_for(2)] == [2]
    assert len(runtime.degradation_log) == 3
    assert isinstance(runtime.degradation_log[0], DegradationEvent)
