"""Unit tests for the one-call tuning pipeline and runtime factories."""

import pytest

from repro.instrument import BBStrategy, LoopStrategy
from repro.tuning import feedback_runtime, standard_runtime, tune_program
from tests.conftest import make_phased_program


def test_tune_program_defaults(machine):
    program, spec = make_phased_program(outer=4)
    tuned = tune_program(program, spec=spec)
    assert tuned.instrumented.strategy_name == "Loop[45]"
    assert tuned.isolated_seconds > 0
    assert tuned.mark_count == len(tuned.instrumented.marks)
    assert tuned.space_overhead == tuned.instrumented.space_overhead


def test_tuned_and_baseline_traces_same_work(machine):
    program, spec = make_phased_program(outer=4)
    tuned = tune_program(program, LoopStrategy(20), machine, spec)
    assert tuned.tuned_trace.total_instrs() == pytest.approx(
        tuned.baseline_trace.total_instrs()
    )


def test_custom_strategy(machine):
    program, spec = make_phased_program(outer=4)
    tuned = tune_program(program, BBStrategy(10, 1), machine, spec)
    assert tuned.instrumented.strategy_name == "BB[10,1]"


def test_typing_override(machine):
    from repro.analysis import StaticBlockTyper, inject_clustering_error

    program, spec = make_phased_program(outer=4)
    typing = StaticBlockTyper().type_blocks(program)
    flipped = inject_clustering_error(typing, 1.0)
    a = tune_program(program, LoopStrategy(20), machine, spec)
    b = tune_program(program, LoopStrategy(20), machine, spec, typing=flipped)
    types_a = sorted(m.phase_type for m in a.instrumented.marks)
    types_b = sorted(1 - m.phase_type for m in b.instrumented.marks)
    assert types_a == types_b


def test_standard_runtime_factory(machine):
    runtime = standard_runtime(machine, ipc_threshold=0.2)
    assert runtime.ipc_threshold == 0.2
    assert runtime.resample_after is None


def test_feedback_runtime_factory(machine):
    runtime = feedback_runtime(machine, resample_after=50)
    assert runtime.resample_after == 50
