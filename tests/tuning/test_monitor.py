"""Unit tests for section monitoring."""

import pytest

from repro.sim import core2quad_amp
from repro.sim.counters import CounterBank
from repro.sim.cost_model import CostVector
from repro.sim.process import Segment, SimProcess, Trace
from repro.tuning.monitor import PhaseState, SectionMonitor


def _proc(machine, pid=1):
    vector = CostVector.zero(machine.core_types())
    vector.instrs = 1.0
    trace = Trace((Segment("s", None, 1.0, vector),))
    return SimProcess(pid, "p", trace, machine.all_cores_mask)


@pytest.fixture()
def monitor(machine):
    return SectionMonitor(CounterBank(len(machine)), min_sample_cycles=100.0)


def test_open_close_yields_ipc(monitor, machine):
    proc = _proc(machine)
    core = machine.cores[0]
    assert monitor.try_open(proc, phase_type=1, core=core)
    proc.stats.record("fast", instrs=5000.0, cycles=10_000.0)
    sample = monitor.close(proc)
    assert sample is not None
    phase_type, ctype_name, ipc = sample
    assert phase_type == 1
    assert ctype_name == "fast"
    assert ipc == pytest.approx(0.5, rel=0.05)  # +/- measurement noise.


def test_short_sample_discarded(monitor, machine):
    proc = _proc(machine)
    monitor.try_open(proc, 0, machine.cores[0])
    proc.stats.record("fast", instrs=10.0, cycles=50.0)  # Below threshold.
    assert monitor.close(proc) is None
    assert monitor.discarded_samples == 1


def test_one_open_measurement_per_process(monitor, machine):
    proc = _proc(machine)
    assert monitor.try_open(proc, 0, machine.cores[0])
    assert not monitor.try_open(proc, 1, machine.cores[1])


def test_counter_exhaustion_defers(machine):
    bank = CounterBank(len(machine), slots_per_core=1)
    monitor = SectionMonitor(bank, min_sample_cycles=1.0)
    a, b = _proc(machine, 1), _proc(machine, 2)
    assert monitor.try_open(a, 0, machine.cores[0])
    assert not monitor.try_open(b, 0, machine.cores[0])  # No slot.
    assert bank.rejections == 1
    # Releasing frees the slot for the retry.
    proc_sample = monitor.close(a)
    assert monitor.try_open(b, 0, machine.cores[0])


def test_close_without_open_is_none(monitor, machine):
    assert monitor.close(_proc(machine)) is None


def test_measurement_uses_own_core_type_only(monitor, machine):
    """Cycles on other core types don't contaminate the sample."""
    proc = _proc(machine)
    monitor.try_open(proc, 0, machine.cores[0])  # Measuring on fast.
    proc.stats.record("slow", instrs=1e6, cycles=1e6)
    proc.stats.record("fast", instrs=1000.0, cycles=10_000.0)
    _, name, ipc = monitor.close(proc)
    assert name == "fast"
    assert ipc == pytest.approx(0.1, rel=0.05)


def test_noise_is_bounded_and_deterministic(machine):
    results = []
    for _ in range(2):
        monitor = SectionMonitor(
            CounterBank(len(machine)), min_sample_cycles=1.0,
            noise=0.02, seed=9,
        )
        proc = _proc(machine)
        monitor.try_open(proc, 0, machine.cores[0])
        proc.stats.record("fast", instrs=1000.0, cycles=1000.0)
        results.append(monitor.close(proc)[2])
    assert results[0] == results[1]
    assert abs(results[0] - 1.0) <= 0.02


def test_phase_state_reset():
    state = PhaseState()
    state.samples["fast"] = 0.5
    state.decided = "x"
    state.firings = 7
    state.reset()
    assert state.samples == {}
    assert state.decided is None
    assert state.firings == 0
