"""Tests for the static-pipeline memoization layer."""

import pytest

from repro.analysis import StaticBlockTyper, inject_clustering_error
from repro.errors import CacheCorruptionError
from repro.instrument import BBStrategy, LoopStrategy
from repro.sim.machine import core2quad_amp, three_core_amp
from repro.tuning.pipeline import (
    PipelineCache,
    baseline_binary,
    default_cache,
    instrument_cached,
    machine_fingerprint,
    program_fingerprint,
    spec_fingerprint,
    strategy_fingerprint,
    tune_program,
    typed_blocks,
)
from tests.conftest import make_phased_program


# -- fingerprints ---------------------------------------------------------------


def test_program_fingerprint_content_keyed():
    a, _ = make_phased_program(outer=4)
    b, _ = make_phased_program(outer=4)
    c, _ = make_phased_program(outer=5)
    assert a is not b
    assert program_fingerprint(a) == program_fingerprint(b)
    assert program_fingerprint(a) != program_fingerprint(c)


def test_strategy_fingerprint_sees_parameters():
    assert strategy_fingerprint(LoopStrategy(45)) != strategy_fingerprint(
        LoopStrategy(30)
    )
    assert strategy_fingerprint(BBStrategy(15, 0)) != strategy_fingerprint(
        BBStrategy(15, 2)
    )


def test_machine_fingerprint_distinguishes_machines():
    assert machine_fingerprint(core2quad_amp()) != machine_fingerprint(
        three_core_amp()
    )


def test_spec_fingerprint_none_is_stable():
    assert spec_fingerprint(None) == spec_fingerprint(None)


# -- cache behaviour ------------------------------------------------------------


def test_tune_program_hits_cache_on_repeat():
    program, spec = make_phased_program(outer=4)
    machine = core2quad_amp()
    cache = PipelineCache()
    first = tune_program(program, LoopStrategy(20), machine, spec, cache=cache)
    misses = cache.misses
    assert cache.hits == 0
    second = tune_program(program, LoopStrategy(20), machine, spec, cache=cache)
    assert second is first
    assert cache.misses == misses
    assert cache.hits == 1


def test_equivalent_programs_share_entries():
    a, spec = make_phased_program(outer=4)
    b, _ = make_phased_program(outer=4)
    cache = PipelineCache()
    tuned_a = tune_program(a, LoopStrategy(20), spec=spec, cache=cache)
    tuned_b = tune_program(b, LoopStrategy(20), spec=spec, cache=cache)
    assert tuned_b is tuned_a
    assert cache.hits == 1


def test_runtime_parameters_do_not_miss():
    # Sweeping delta (a runtime knob) must not grow the static cache.
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache()
    tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    entries = len(cache)
    for _ in range(5):
        tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    assert len(cache) == entries


def test_distinct_strategies_get_distinct_entries():
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache()
    a = tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    b = tune_program(program, BBStrategy(10, 1), spec=spec, cache=cache)
    assert a is not b
    assert a.instrumented.strategy_name != b.instrumented.strategy_name


def test_typing_override_is_part_of_key():
    program, spec = make_phased_program(outer=4)
    typing = StaticBlockTyper().type_blocks(program)
    flipped = inject_clustering_error(typing, 1.0)
    cache = PipelineCache()
    plain = tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    overridden = tune_program(
        program, LoopStrategy(20), spec=spec, typing=flipped, cache=cache
    )
    assert plain is not overridden


def test_baseline_binary_shared_between_levels():
    # tune_program's build reuses the cached baseline trace.
    program, spec = make_phased_program(outer=4)
    machine = core2quad_amp()
    cache = PipelineCache()
    trace, isolated = baseline_binary(program, machine, spec, cache=cache)
    tuned = tune_program(program, LoopStrategy(20), machine, spec, cache=cache)
    assert tuned.baseline_trace is trace
    assert tuned.isolated_seconds == isolated
    assert cache.hits >= 1


def test_cached_equals_fresh():
    program, spec = make_phased_program(outer=4)
    machine = core2quad_amp()
    warm = PipelineCache()
    tune_program(program, LoopStrategy(20), machine, spec, cache=warm)
    from_warm = tune_program(program, LoopStrategy(20), machine, spec, cache=warm)
    from_cold = tune_program(
        program, LoopStrategy(20), machine, spec, cache=PipelineCache()
    )
    assert from_warm.isolated_seconds == from_cold.isolated_seconds
    assert from_warm.mark_count == from_cold.mark_count
    assert [n for n in from_warm.tuned_trace.nodes] is not None
    assert from_warm.tuned_trace.total_instrs() == pytest.approx(
        from_cold.tuned_trace.total_instrs()
    )


def test_typed_blocks_cached():
    program, _ = make_phased_program(outer=4)
    cache = PipelineCache()
    first = typed_blocks(program, cache=cache)
    second = typed_blocks(program, cache=cache)
    assert second is first
    assert cache.stats()["hits"] == 1


def test_instrument_cached_reuses_typing_level():
    program, _ = make_phased_program(outer=4)
    cache = PipelineCache()
    typed_blocks(program, cache=cache)
    instrument_cached(program, LoopStrategy(20), cache=cache)
    # The instrumented build found the typing already cached.
    assert cache.hits >= 1


def test_stats_and_clear():
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache()
    tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    stats = cache.stats()
    assert stats["entries"] == len(cache) > 0
    assert stats["hits"] == 1
    assert 0.0 < stats["hit_rate"] < 1.0
    cache.reset_stats()
    assert cache.stats()["hits"] == 0
    assert len(cache) > 0
    cache.clear()
    assert len(cache) == 0


def test_default_cache_is_process_wide():
    assert default_cache() is default_cache()


# -- corruption detection ---------------------------------------------------


def _tamper_first_entry(cache):
    key, (value, digest) = next(iter(cache._entries.items()))
    cache._entries[key] = (value, "0" * len(digest))
    return key


def test_corrupt_entry_is_evicted_and_rebuilt():
    program, _ = make_phased_program(outer=4)
    cache = PipelineCache()
    first = typed_blocks(program, cache=cache)
    _tamper_first_entry(cache)
    rebuilt = typed_blocks(program, cache=cache)
    assert rebuilt is not first
    assert rebuilt == first
    assert cache.stats()["corruptions"] == 1
    # The rebuilt entry carries a fresh, valid digest: next call hits.
    assert typed_blocks(program, cache=cache) is rebuilt
    assert cache.stats()["corruptions"] == 1


def test_strict_cache_raises_on_corruption():
    program, _ = make_phased_program(outer=4)
    cache = PipelineCache(strict=True)
    typed_blocks(program, cache=cache)
    _tamper_first_entry(cache)
    with pytest.raises(CacheCorruptionError, match="integrity"):
        typed_blocks(program, cache=cache)
    assert cache.corruptions == 1


def test_check_integrity_sweeps_all_entries():
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache()
    tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    assert cache.check_integrity() == 0
    before = len(cache)
    _tamper_first_entry(cache)
    assert cache.check_integrity() == 1
    assert len(cache) == before - 1
    assert cache.stats()["corruptions"] == 1


def test_clear_resets_corruption_count():
    program, _ = make_phased_program(outer=4)
    cache = PipelineCache()
    typed_blocks(program, cache=cache)
    _tamper_first_entry(cache)
    typed_blocks(program, cache=cache)
    assert cache.corruptions == 1
    cache.clear()
    assert cache.corruptions == 0


# -- disk tier --------------------------------------------------------------


def _warm_disk(tmp_path):
    """Build one tuned binary with a disk-backed cache; return the lot."""
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache(disk_dir=tmp_path)
    tuned = tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    return program, spec, cache, tuned


def test_disk_roundtrip_serves_fresh_cache(tmp_path):
    """A brand-new cache over the same directory rebuilds nothing."""
    program, spec, warm, tuned = _warm_disk(tmp_path)
    assert warm.misses > 0
    assert warm.disk_hits == 0
    assert len(list(tmp_path.glob("*.pkl"))) == len(warm)
    cold = PipelineCache(disk_dir=tmp_path)
    again = tune_program(program, LoopStrategy(20), spec=spec, cache=cold)
    assert cold.misses == 0
    assert cold.disk_hits > 0
    stats = cold.stats()
    assert stats["hit_rate"] == 1.0
    assert stats["disk_hits"] == cold.disk_hits
    assert again.isolated_seconds == tuned.isolated_seconds
    assert again.mark_count == tuned.mark_count


def test_set_disk_dir_creates_directory(tmp_path):
    target = tmp_path / "nested" / "cache"
    cache = PipelineCache(disk_dir=target)
    assert target.is_dir()
    assert cache.disk_dir == target


def _smash_tuned_files(tmp_path):
    smashed = list(tmp_path.glob("tuned-*.pkl"))
    assert smashed, "expected a persisted tuned-level entry"
    for path in smashed:
        path.write_bytes(b"not a pickle")
    return smashed


def test_corrupt_disk_file_is_evicted_and_rebuilt(tmp_path):
    program, spec, _, tuned = _warm_disk(tmp_path)
    smashed = _smash_tuned_files(tmp_path)
    cold = PipelineCache(disk_dir=tmp_path)
    rebuilt = tune_program(program, LoopStrategy(20), spec=spec, cache=cold)
    assert cold.corruptions == len(smashed)
    assert cold.misses == len(smashed)  # only the smashed level rebuilt
    assert cold.disk_hits > 0  # the nested levels still came from disk
    assert rebuilt.mark_count == tuned.mark_count
    # The rebuild re-persisted a valid file: the next process hits clean.
    fresh = PipelineCache(disk_dir=tmp_path)
    tune_program(program, LoopStrategy(20), spec=spec, cache=fresh)
    assert fresh.misses == 0
    assert fresh.corruptions == 0


def test_strict_cache_raises_on_disk_corruption(tmp_path):
    program, spec, _, _ = _warm_disk(tmp_path)
    _smash_tuned_files(tmp_path)
    strict = PipelineCache(strict=True, disk_dir=tmp_path)
    with pytest.raises(CacheCorruptionError, match="integrity"):
        tune_program(program, LoopStrategy(20), spec=spec, cache=strict)


def test_foreign_disk_file_rejected(tmp_path):
    """A well-formed pickle whose stored key differs from the lookup key
    (e.g. a file copied between cache directories) is treated as corrupt."""
    import pickle

    from repro.tuning.pipeline import _key_digest

    program, spec, warm, _ = _warm_disk(tmp_path)
    key = next(k for k in warm._entries if k[0] == "tuned")
    value = warm._entries[key][0]
    forged = pickle.dumps((("forged",), value, _key_digest(key)))
    warm._disk_path(key).write_bytes(forged)
    cold = PipelineCache(disk_dir=tmp_path)
    tune_program(program, LoopStrategy(20), spec=spec, cache=cold)
    assert cold.corruptions == 1
    assert cold.misses == 1


def test_disk_eviction_respects_cap(tmp_path):
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache(disk_dir=tmp_path, max_disk_entries=2)
    tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    assert len(cache) > 2  # the pipeline stores more levels than the cap
    assert len(list(tmp_path.glob("*.pkl"))) == 2


def test_disk_write_failure_never_fails_the_build(tmp_path):
    import os

    if os.geteuid() == 0:
        pytest.skip("directory permissions are not enforced for root")
    target = tmp_path / "readonly"
    target.mkdir()
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache(disk_dir=target)
    target.chmod(0o500)
    try:
        tuned = tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    finally:
        target.chmod(0o700)
    assert tuned.mark_count >= 0
    assert len(cache) > 0


# -- entry shipping (spawn-started workers) ---------------------------------


def test_export_install_roundtrip():
    program, spec = make_phased_program(outer=4)
    warm = PipelineCache()
    tuned = tune_program(program, LoopStrategy(20), spec=spec, cache=warm)
    fresh = PipelineCache()
    assert fresh.install_entries(warm.export_entries()) == len(warm)
    again = tune_program(program, LoopStrategy(20), spec=spec, cache=fresh)
    assert fresh.misses == 0
    # The blob round-trips through pickle, so the served entry is an
    # equal copy of the original, not the same object.
    assert again.isolated_seconds == tuned.isolated_seconds
    assert again.mark_count == tuned.mark_count


def test_install_drops_damaged_entries():
    program, spec = make_phased_program(outer=4)
    warm = PipelineCache()
    tune_program(program, LoopStrategy(20), spec=spec, cache=warm)
    _tamper_first_entry(warm)
    blob = warm.export_entries()
    fresh = PipelineCache()
    assert fresh.install_entries(blob) == len(warm) - 1
    assert fresh.corruptions == 1
    strict = PipelineCache(strict=True)
    with pytest.raises(CacheCorruptionError, match="integrity"):
        strict.install_entries(blob)


def test_disk_eviction_deterministic_under_equal_mtimes(tmp_path):
    """Coarse filesystem timestamps produce same-mtime batches; eviction
    must tie-break by name so every process drops the same subset."""
    import os

    cache = PipelineCache(disk_dir=tmp_path, max_disk_entries=2)
    names = ["d.pkl", "b.pkl", "c.pkl", "a.pkl", "e.pkl"]
    for name in names:
        (tmp_path / name).write_bytes(b"x")
        os.utime(tmp_path / name, (1_000_000_000, 1_000_000_000))
    cache._evict_disk_overflow()
    survivors = sorted(p.name for p in tmp_path.glob("*.pkl"))
    # Oldest-first with name tie-break: a, b, c evicted; d, e survive.
    assert survivors == ["d.pkl", "e.pkl"]
