"""Tests for the static-pipeline memoization layer."""

import pytest

from repro.analysis import StaticBlockTyper, inject_clustering_error
from repro.errors import CacheCorruptionError
from repro.instrument import BBStrategy, LoopStrategy
from repro.sim.machine import core2quad_amp, three_core_amp
from repro.tuning.pipeline import (
    PipelineCache,
    baseline_binary,
    default_cache,
    instrument_cached,
    machine_fingerprint,
    program_fingerprint,
    spec_fingerprint,
    strategy_fingerprint,
    tune_program,
    typed_blocks,
)
from tests.conftest import make_phased_program


# -- fingerprints ---------------------------------------------------------------


def test_program_fingerprint_content_keyed():
    a, _ = make_phased_program(outer=4)
    b, _ = make_phased_program(outer=4)
    c, _ = make_phased_program(outer=5)
    assert a is not b
    assert program_fingerprint(a) == program_fingerprint(b)
    assert program_fingerprint(a) != program_fingerprint(c)


def test_strategy_fingerprint_sees_parameters():
    assert strategy_fingerprint(LoopStrategy(45)) != strategy_fingerprint(
        LoopStrategy(30)
    )
    assert strategy_fingerprint(BBStrategy(15, 0)) != strategy_fingerprint(
        BBStrategy(15, 2)
    )


def test_machine_fingerprint_distinguishes_machines():
    assert machine_fingerprint(core2quad_amp()) != machine_fingerprint(
        three_core_amp()
    )


def test_spec_fingerprint_none_is_stable():
    assert spec_fingerprint(None) == spec_fingerprint(None)


# -- cache behaviour ------------------------------------------------------------


def test_tune_program_hits_cache_on_repeat():
    program, spec = make_phased_program(outer=4)
    machine = core2quad_amp()
    cache = PipelineCache()
    first = tune_program(program, LoopStrategy(20), machine, spec, cache=cache)
    misses = cache.misses
    assert cache.hits == 0
    second = tune_program(program, LoopStrategy(20), machine, spec, cache=cache)
    assert second is first
    assert cache.misses == misses
    assert cache.hits == 1


def test_equivalent_programs_share_entries():
    a, spec = make_phased_program(outer=4)
    b, _ = make_phased_program(outer=4)
    cache = PipelineCache()
    tuned_a = tune_program(a, LoopStrategy(20), spec=spec, cache=cache)
    tuned_b = tune_program(b, LoopStrategy(20), spec=spec, cache=cache)
    assert tuned_b is tuned_a
    assert cache.hits == 1


def test_runtime_parameters_do_not_miss():
    # Sweeping delta (a runtime knob) must not grow the static cache.
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache()
    tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    entries = len(cache)
    for _ in range(5):
        tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    assert len(cache) == entries


def test_distinct_strategies_get_distinct_entries():
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache()
    a = tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    b = tune_program(program, BBStrategy(10, 1), spec=spec, cache=cache)
    assert a is not b
    assert a.instrumented.strategy_name != b.instrumented.strategy_name


def test_typing_override_is_part_of_key():
    program, spec = make_phased_program(outer=4)
    typing = StaticBlockTyper().type_blocks(program)
    flipped = inject_clustering_error(typing, 1.0)
    cache = PipelineCache()
    plain = tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    overridden = tune_program(
        program, LoopStrategy(20), spec=spec, typing=flipped, cache=cache
    )
    assert plain is not overridden


def test_baseline_binary_shared_between_levels():
    # tune_program's build reuses the cached baseline trace.
    program, spec = make_phased_program(outer=4)
    machine = core2quad_amp()
    cache = PipelineCache()
    trace, isolated = baseline_binary(program, machine, spec, cache=cache)
    tuned = tune_program(program, LoopStrategy(20), machine, spec, cache=cache)
    assert tuned.baseline_trace is trace
    assert tuned.isolated_seconds == isolated
    assert cache.hits >= 1


def test_cached_equals_fresh():
    program, spec = make_phased_program(outer=4)
    machine = core2quad_amp()
    warm = PipelineCache()
    tune_program(program, LoopStrategy(20), machine, spec, cache=warm)
    from_warm = tune_program(program, LoopStrategy(20), machine, spec, cache=warm)
    from_cold = tune_program(
        program, LoopStrategy(20), machine, spec, cache=PipelineCache()
    )
    assert from_warm.isolated_seconds == from_cold.isolated_seconds
    assert from_warm.mark_count == from_cold.mark_count
    assert [n for n in from_warm.tuned_trace.nodes] is not None
    assert from_warm.tuned_trace.total_instrs() == pytest.approx(
        from_cold.tuned_trace.total_instrs()
    )


def test_typed_blocks_cached():
    program, _ = make_phased_program(outer=4)
    cache = PipelineCache()
    first = typed_blocks(program, cache=cache)
    second = typed_blocks(program, cache=cache)
    assert second is first
    assert cache.stats()["hits"] == 1


def test_instrument_cached_reuses_typing_level():
    program, _ = make_phased_program(outer=4)
    cache = PipelineCache()
    typed_blocks(program, cache=cache)
    instrument_cached(program, LoopStrategy(20), cache=cache)
    # The instrumented build found the typing already cached.
    assert cache.hits >= 1


def test_stats_and_clear():
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache()
    tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    stats = cache.stats()
    assert stats["entries"] == len(cache) > 0
    assert stats["hits"] == 1
    assert 0.0 < stats["hit_rate"] < 1.0
    cache.reset_stats()
    assert cache.stats()["hits"] == 0
    assert len(cache) > 0
    cache.clear()
    assert len(cache) == 0


def test_default_cache_is_process_wide():
    assert default_cache() is default_cache()


# -- corruption detection ---------------------------------------------------


def _tamper_first_entry(cache):
    key, (value, digest) = next(iter(cache._entries.items()))
    cache._entries[key] = (value, "0" * len(digest))
    return key


def test_corrupt_entry_is_evicted_and_rebuilt():
    program, _ = make_phased_program(outer=4)
    cache = PipelineCache()
    first = typed_blocks(program, cache=cache)
    _tamper_first_entry(cache)
    rebuilt = typed_blocks(program, cache=cache)
    assert rebuilt is not first
    assert rebuilt == first
    assert cache.stats()["corruptions"] == 1
    # The rebuilt entry carries a fresh, valid digest: next call hits.
    assert typed_blocks(program, cache=cache) is rebuilt
    assert cache.stats()["corruptions"] == 1


def test_strict_cache_raises_on_corruption():
    program, _ = make_phased_program(outer=4)
    cache = PipelineCache(strict=True)
    typed_blocks(program, cache=cache)
    _tamper_first_entry(cache)
    with pytest.raises(CacheCorruptionError, match="integrity"):
        typed_blocks(program, cache=cache)
    assert cache.corruptions == 1


def test_check_integrity_sweeps_all_entries():
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache()
    tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    assert cache.check_integrity() == 0
    before = len(cache)
    _tamper_first_entry(cache)
    assert cache.check_integrity() == 1
    assert len(cache) == before - 1
    assert cache.stats()["corruptions"] == 1


def test_clear_resets_corruption_count():
    program, _ = make_phased_program(outer=4)
    cache = PipelineCache()
    typed_blocks(program, cache=cache)
    _tamper_first_entry(cache)
    typed_blocks(program, cache=cache)
    assert cache.corruptions == 1
    cache.clear()
    assert cache.corruptions == 0


# -- disk tier --------------------------------------------------------------


def _warm_disk(tmp_path):
    """Build one tuned binary with a disk-backed cache; return the lot."""
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache(disk_dir=tmp_path)
    tuned = tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    return program, spec, cache, tuned


def test_disk_roundtrip_serves_fresh_cache(tmp_path):
    """A brand-new cache over the same directory rebuilds nothing."""
    program, spec, warm, tuned = _warm_disk(tmp_path)
    assert warm.misses > 0
    assert warm.disk_hits == 0
    # The disk tier is a CAS: one ref (and one object) per entry.
    assert len(warm.store.refs("pipeline")) == len(warm)
    assert len(warm.store.objects()) == len(warm)
    cold = PipelineCache(disk_dir=tmp_path)
    again = tune_program(program, LoopStrategy(20), spec=spec, cache=cold)
    assert cold.misses == 0
    assert cold.disk_hits > 0
    stats = cold.stats()
    assert stats["hit_rate"] == 1.0
    assert stats["disk_hits"] == cold.disk_hits
    assert again.isolated_seconds == tuned.isolated_seconds
    assert again.mark_count == tuned.mark_count


def test_set_disk_dir_creates_directory(tmp_path):
    target = tmp_path / "nested" / "cache"
    cache = PipelineCache(disk_dir=target)
    assert target.is_dir()
    assert cache.disk_dir == target


def _smash_tuned_entries(tmp_path):
    """Overwrite the object bytes behind every tuned-level ref."""
    from repro.store import LocalStore

    store = LocalStore(tmp_path)
    smashed = {
        name: digest
        for name, digest in store.refs("pipeline").items()
        if name.startswith("pipeline/tuned-")
    }
    assert smashed, "expected a persisted tuned-level entry"
    for digest in smashed.values():
        store._object_path(digest).write_bytes(b"not a pickle")
    return smashed


def test_corrupt_disk_file_is_evicted_and_rebuilt(tmp_path):
    program, spec, _, tuned = _warm_disk(tmp_path)
    smashed = _smash_tuned_entries(tmp_path)
    cold = PipelineCache(disk_dir=tmp_path)
    rebuilt = tune_program(program, LoopStrategy(20), spec=spec, cache=cold)
    assert cold.corruptions == len(smashed)
    assert cold.misses == len(smashed)  # only the smashed level rebuilt
    assert cold.disk_hits > 0  # the nested levels still came from disk
    assert rebuilt.mark_count == tuned.mark_count
    # The damaged object was quarantined, not deleted in place.
    assert list((tmp_path / "quarantine").iterdir())
    # The rebuild re-persisted a valid entry: the next process hits clean.
    fresh = PipelineCache(disk_dir=tmp_path)
    tune_program(program, LoopStrategy(20), spec=spec, cache=fresh)
    assert fresh.misses == 0
    assert fresh.corruptions == 0


def test_strict_cache_raises_on_disk_corruption(tmp_path):
    program, spec, _, _ = _warm_disk(tmp_path)
    _smash_tuned_entries(tmp_path)
    strict = PipelineCache(strict=True, disk_dir=tmp_path)
    with pytest.raises(CacheCorruptionError, match="integrity"):
        tune_program(program, LoopStrategy(20), spec=spec, cache=strict)


def test_foreign_disk_file_rejected(tmp_path):
    """A well-formed object whose stored key differs from the lookup key
    (e.g. a ref copied between cache directories) is treated as corrupt."""
    import pickle

    from repro.tuning.pipeline import _key_digest

    program, spec, warm, _ = _warm_disk(tmp_path)
    key = next(k for k in warm._entries if k[0] == "tuned")
    value = warm._entries[key][0]
    forged = pickle.dumps((("forged",), value, _key_digest(key)))
    digest = warm.store.put(forged)
    warm.store.set_ref(warm._ref_name(key), digest)
    cold = PipelineCache(disk_dir=tmp_path)
    tune_program(program, LoopStrategy(20), spec=spec, cache=cold)
    assert cold.corruptions == 1
    assert cold.misses == 1


def test_legacy_disk_layout_migrated(tmp_path):
    """Flat ``{level}-{digest}.pkl`` files from the pre-store layout are
    republished into the CAS on attach and served without a rebuild."""
    import pickle

    from repro.tuning.pipeline import _key_digest

    program, spec = make_phased_program(outer=4)
    warm = PipelineCache()
    tune_program(program, LoopStrategy(20), spec=spec, cache=warm)
    for key, (value, digest) in warm._entries.items():
        blob = pickle.dumps((key, value, digest))
        (tmp_path / f"{key[0]}-{_key_digest(key)}.pkl").write_bytes(blob)
    (tmp_path / "garbage-feedface.pkl").write_bytes(b"not a cache entry")
    cold = PipelineCache(disk_dir=tmp_path)
    assert len(cold.store.refs("pipeline")) == len(warm)
    tune_program(program, LoopStrategy(20), spec=spec, cache=cold)
    assert cold.misses == 0
    assert cold.disk_hits > 0
    # Migrated files are gone; the unverifiable impostor is left alone.
    assert sorted(p.name for p in tmp_path.glob("*.pkl")) == [
        "garbage-feedface.pkl"
    ]


def test_disk_eviction_respects_cap(tmp_path):
    from repro.store import LocalStore

    program, spec = make_phased_program(outer=4)
    cache = PipelineCache(disk_dir=tmp_path, max_disk_entries=2)
    tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    assert len(cache) > 2  # the pipeline stores more levels than the cap
    store = LocalStore(tmp_path)
    assert len(store.refs("pipeline")) == 2
    assert len(store.objects()) == 2  # evicted objects are collected too
    assert cache.evicted_entries == len(cache) - 2
    assert cache.stats()["evicted_bytes"] > 0


def test_disk_eviction_respects_byte_budget(tmp_path):
    """With a byte budget the tier evicts by size, not entry count."""
    program, spec = make_phased_program(outer=4)
    probe = PipelineCache(disk_dir=tmp_path / "probe")
    tune_program(program, LoopStrategy(20), spec=spec, cache=probe)
    total = probe.store.size_bytes()
    largest = max(probe.store.object_size(d) for d in probe.store.objects())
    budget = total - 1  # force at least one eviction, keep most entries

    cache = PipelineCache(
        disk_dir=tmp_path / "capped",
        max_disk_entries=None,
        max_disk_bytes=budget,
    )
    tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    assert cache.evicted_entries >= 1
    assert cache.evicted_bytes >= 1
    assert cache.store.size_bytes() <= budget
    assert cache.stats()["evicted_bytes"] == cache.evicted_bytes
    # Sanity: the budget was binding on bytes, not on a count cap.
    assert largest <= total


def test_disk_write_failure_never_fails_the_build(tmp_path):
    import os

    if os.geteuid() == 0:
        pytest.skip("directory permissions are not enforced for root")
    target = tmp_path / "readonly"
    target.mkdir()
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache(disk_dir=target)
    target.chmod(0o500)
    try:
        tuned = tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    finally:
        target.chmod(0o700)
    assert tuned.mark_count >= 0
    assert len(cache) > 0


# -- entry shipping (spawn-started workers) ---------------------------------


def test_export_install_roundtrip():
    program, spec = make_phased_program(outer=4)
    warm = PipelineCache()
    tuned = tune_program(program, LoopStrategy(20), spec=spec, cache=warm)
    fresh = PipelineCache()
    assert fresh.install_entries(warm.export_entries()) == len(warm)
    again = tune_program(program, LoopStrategy(20), spec=spec, cache=fresh)
    assert fresh.misses == 0
    # The blob round-trips through pickle, so the served entry is an
    # equal copy of the original, not the same object.
    assert again.isolated_seconds == tuned.isolated_seconds
    assert again.mark_count == tuned.mark_count


def test_install_drops_damaged_entries():
    program, spec = make_phased_program(outer=4)
    warm = PipelineCache()
    tune_program(program, LoopStrategy(20), spec=spec, cache=warm)
    _tamper_first_entry(warm)
    blob = warm.export_entries()
    fresh = PipelineCache()
    assert fresh.install_entries(blob) == len(warm) - 1
    assert fresh.corruptions == 1
    strict = PipelineCache(strict=True)
    with pytest.raises(CacheCorruptionError, match="integrity"):
        strict.install_entries(blob)


def test_disk_eviction_deterministic_under_equal_mtimes(tmp_path):
    """Coarse filesystem timestamps produce same-mtime batches; eviction
    must tie-break by ref name so every process drops the same subset."""
    import os

    cache = PipelineCache(disk_dir=tmp_path, max_disk_entries=2)
    store = cache.store
    for name in ["d", "b", "c", "a", "e"]:
        digest = store.put(f"entry-{name}".encode())
        ref = f"pipeline/{name}"
        store.set_ref(ref, digest)
        os.utime(store._ref_path(ref), (1_000_000_000, 1_000_000_000))
    cache._evict_disk_overflow()
    # Oldest-first with name tie-break: a, b, c evicted; d, e survive.
    assert sorted(store.refs("pipeline")) == ["pipeline/d", "pipeline/e"]
    assert len(store.objects()) == 2
    assert cache.evicted_entries == 3


def test_remote_read_through_promotes(tmp_path, monkeypatch):
    """A second host with an empty local cache serves everything from the
    remote tier — and promotes it locally so the next run is offline."""
    warm_dir = tmp_path / "shared"
    local_dir = tmp_path / "local"
    program, spec, _, tuned = _warm_disk(warm_dir)

    monkeypatch.setenv("REPRO_STORE_URL", str(warm_dir))
    cold = PipelineCache(disk_dir=local_dir)
    again = tune_program(program, LoopStrategy(20), spec=spec, cache=cold)
    assert cold.misses == 0
    assert cold.store_hits > 0
    assert cold.disk_hits == 0
    assert again.mark_count == tuned.mark_count
    assert again.isolated_seconds == tuned.isolated_seconds

    # Promotion: with the remote gone, the local tier now has it all.
    monkeypatch.delenv("REPRO_STORE_URL")
    offline = PipelineCache(disk_dir=local_dir)
    tune_program(program, LoopStrategy(20), spec=spec, cache=offline)
    assert offline.misses == 0
    assert offline.disk_hits > 0


def test_dead_remote_tier_degrades_to_recompute(tmp_path, monkeypatch):
    """An unreachable remote tier must never fail a build."""
    monkeypatch.setenv("REPRO_STORE_URL", "http://127.0.0.1:9")
    monkeypatch.setenv("REPRO_STORE_TIMEOUT", "0.2")
    program, spec = make_phased_program(outer=4)
    cache = PipelineCache(disk_dir=tmp_path)
    tuned = tune_program(program, LoopStrategy(20), spec=spec, cache=cache)
    assert tuned.mark_count >= 0
    assert cache.misses > 0
    assert cache.store_hits == 0


def test_warm_from_store_prefetches_remote_entries(tmp_path, monkeypatch):
    warm_dir = tmp_path / "shared"
    program, spec, warm, _ = _warm_disk(warm_dir)
    monkeypatch.setenv("REPRO_STORE_URL", str(warm_dir))
    cold = PipelineCache(disk_dir=tmp_path / "local")
    assert cold.warm_from_store() == len(warm)
    monkeypatch.delenv("REPRO_STORE_URL")
    tune_program(program, LoopStrategy(20), spec=spec, cache=cold)
    assert cold.misses == 0
    # Prefetched entries landed in memory: no disk loads either.
    assert cold.disk_hits == 0
