"""Unit tests for Algorithm 2 (optimal core assignment)."""

import pytest

from repro.errors import AnalysisError
from repro.sim.machine import FAST, SLOW
from repro.tuning.assignment import select_core, select_core_checked


def test_memory_bound_goes_to_higher_ipc_core():
    """Slow core shows distinctly higher IPC -> picked when gap > delta."""
    observed = {"fast": 0.30, "slow": 0.55}
    assert select_core([FAST, SLOW], observed, delta=0.1) is SLOW


def test_small_gap_stays_at_c0():
    observed = {"fast": 0.30, "slow": 0.35}
    picked = select_core([FAST, SLOW], observed, delta=0.1)
    assert picked is FAST  # c0: the lowest-IPC entry.


def test_exact_tie_prefers_faster_core():
    observed = {"fast": 0.5, "slow": 0.5}
    assert select_core([FAST, SLOW], observed, delta=0.1) is FAST


def test_gap_must_strictly_exceed_delta():
    observed = {"fast": 0.3, "slow": 0.4}
    assert select_core([FAST, SLOW], observed, 0.11) is FAST
    assert select_core([FAST, SLOW], observed, 0.09) is SLOW


def test_reference_metric_compute_bound_case():
    """Under the reference-cycle metric, compute-bound code shows higher
    IPC on the fast core: it gets picked."""
    observed = {"fast": 0.80, "slow": 0.53}
    assert select_core([FAST, SLOW], observed, 0.15) is FAST


def test_chain_of_three_core_types():
    mid = FAST.__class__("mid", 2.0)
    observed = {"fast": 0.2, "mid": 0.5, "slow": 0.9}
    # Both adjacent gaps exceed delta: walk to the top.
    assert select_core([FAST, mid, SLOW], observed, 0.2).name == "slow"
    # Only the first gap is significant: stop at mid.
    observed = {"fast": 0.2, "mid": 0.5, "slow": 0.55}
    assert select_core([FAST, mid, SLOW], observed, 0.2).name == "mid"


def test_checked_reports_significance():
    significant = select_core_checked(
        [FAST, SLOW], {"fast": 0.3, "slow": 0.6}, 0.1
    )
    assert significant.significant
    assert significant.core_type is SLOW
    noise = select_core_checked(
        [FAST, SLOW], {"fast": 0.50, "slow": 0.51}, 0.1
    )
    assert not noise.significant


def test_missing_observation_rejected():
    with pytest.raises(AnalysisError, match="no IPC observed"):
        select_core([FAST, SLOW], {"fast": 0.5}, 0.1)


def test_empty_core_types_rejected():
    with pytest.raises(AnalysisError):
        select_core([], {}, 0.1)
