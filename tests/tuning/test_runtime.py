"""Unit tests for the phase-mark runtime state machine."""

import pytest

from repro.sim import core2quad_amp
from repro.sim.cost_model import CostVector
from repro.sim.process import Segment, SimProcess, Trace
from repro.tuning.runtime import FREE, PhaseTuningRuntime, SwitchToAllRuntime


def _proc(machine, pid=1):
    vector = CostVector.zero(machine.core_types())
    vector.instrs = 1.0
    trace = Trace((Segment("s", None, 1.0, vector),))
    return SimProcess(pid, "p", trace, machine.all_cores_mask)


def _runtime(machine, delta=0.1, **kw):
    kw.setdefault("monitor_noise", 0.0)
    kw.setdefault("min_sample_cycles", 100.0)
    return PhaseTuningRuntime(machine, delta, **kw)


def _feed_sample(proc, ctype_name, instrs, cycles):
    proc.stats.record(ctype_name, instrs, cycles)


def test_explore_then_decide_memory_bound(machine):
    """Walk the full state machine: sample fast, sample slow, decide.

    Core-cycle IPCs 0.2 (fast) and 0.3 (slow) become reference IPCs 0.2
    and 0.2: a tie under the reference metric, so the default tie policy
    leaves the phase unrestricted.
    """
    runtime = _runtime(machine, delta=0.05)
    proc = _proc(machine)
    fast_core, slow_core = machine.cores[0], machine.cores[2]

    # First firing on a fast core: opens a measurement, stays put.
    action = runtime.on_mark(proc, 0, 1, fast_core, 0.0)
    assert action.affinity is None
    _feed_sample(proc, "fast", 2000.0, 10_000.0)  # IPC 0.2.

    # Second firing: absorbs the fast sample, steers toward slow.
    action = runtime.on_mark(proc, 0, 1, fast_core, 1.0)
    assert action.affinity == frozenset({2, 3})
    proc.affinity = action.affinity

    # Third firing on slow: opens the slow measurement.
    action = runtime.on_mark(proc, 0, 1, slow_core, 2.0)
    assert action.affinity is None
    _feed_sample(proc, "slow", 3000.0, 10_000.0)  # IPC 0.3.

    # Fourth firing: decides.  Reference IPCs tie -> unconstrained.
    action = runtime.on_mark(proc, 0, 1, slow_core, 3.0)
    assert proc.tuner_state[1].decided is FREE
    assert action.affinity == machine.all_cores_mask


def test_decides_fast_for_compute_bound(machine):
    """Equal core-cycle IPCs: the fast core wins under the reference
    metric (it retires more per wall second)."""
    runtime = _runtime(machine, delta=0.15)
    proc = _proc(machine)
    fast_core, slow_core = machine.cores[0], machine.cores[2]

    runtime.on_mark(proc, 0, 1, fast_core, 0.0)
    _feed_sample(proc, "fast", 8000.0, 10_000.0)  # IPC 0.8.
    runtime.on_mark(proc, 0, 1, fast_core, 1.0)
    runtime.on_mark(proc, 0, 1, slow_core, 2.0)
    _feed_sample(proc, "slow", 8000.0, 10_000.0)  # IPC 0.8 core = 0.53 ref.
    runtime.on_mark(proc, 0, 1, slow_core, 3.0)

    decided = proc.tuner_state[1].decided
    assert decided is not FREE
    assert decided.name == "fast"


def test_steady_state_switches_only(machine):
    runtime = _runtime(machine)
    proc = _proc(machine)
    state = runtime._state(proc, 2)
    state.decided = machine.core_types()[1]  # Pinned slow.
    action = runtime.on_mark(proc, 0, 2, machine.cores[0], 0.0)
    assert action.affinity == frozenset({2, 3})
    proc.affinity = action.affinity
    # Already on the right mask: no-op.
    action = runtime.on_mark(proc, 0, 2, machine.cores[2], 1.0)
    assert action.affinity is None


def test_untyped_mark_is_noop(machine):
    runtime = _runtime(machine)
    action = runtime.on_mark(_proc(machine), 0, None, machine.cores[0], 0.0)
    assert action.affinity is None
    assert action.extra_cycles == 0.0


def test_per_phase_type_state_is_independent(machine):
    runtime = _runtime(machine)
    proc = _proc(machine)
    runtime.on_mark(proc, 0, 0, machine.cores[0], 0.0)
    runtime.on_mark(proc, 1, 1, machine.cores[0], 1.0)
    assert set(proc.tuner_state) == {0, 1}


def test_assignment_for(machine):
    runtime = _runtime(machine)
    proc = _proc(machine)
    assert runtime.assignment_for(proc, 0) is None
    state = runtime._state(proc, 0)
    state.decided = FREE
    assert runtime.assignment_for(proc, 0) is None
    state.decided = machine.core_types()[0]
    assert runtime.assignment_for(proc, 0).name == "fast"


def test_pin_ties_policy(machine):
    runtime = _runtime(machine, delta=0.5, tie_policy="algorithm")
    proc = _proc(machine)
    fast_core, slow_core = machine.cores[0], machine.cores[2]
    runtime.on_mark(proc, 0, 1, fast_core, 0.0)
    _feed_sample(proc, "fast", 5000.0, 10_000.0)
    runtime.on_mark(proc, 0, 1, fast_core, 1.0)
    runtime.on_mark(proc, 0, 1, slow_core, 2.0)
    _feed_sample(proc, "slow", 5000.0, 10_000.0)
    runtime.on_mark(proc, 0, 1, slow_core, 3.0)
    # Even a pure tie pins under the literal-algorithm policy.
    assert proc.tuner_state[1].decided is not FREE


def test_tie_policy_current_pins_measuring_type(machine):
    runtime = _runtime(machine, delta=5.0, tie_policy="current")
    proc = _proc(machine)
    fast_core, slow_core = machine.cores[0], machine.cores[2]
    runtime.on_mark(proc, 0, 1, fast_core, 0.0)
    _feed_sample(proc, "fast", 5000.0, 10_000.0)
    runtime.on_mark(proc, 0, 1, fast_core, 1.0)
    runtime.on_mark(proc, 0, 1, slow_core, 2.0)
    _feed_sample(proc, "slow", 5000.0, 10_000.0)
    decision_action = runtime.on_mark(proc, 0, 1, slow_core, 3.0)
    assert proc.tuner_state[1].decided.name == "slow"  # Where it measured.


def test_bad_tie_policy_rejected(machine):
    with pytest.raises(ValueError, match="tie policy"):
        PhaseTuningRuntime(machine, tie_policy="bogus")


def test_bad_cycle_metric_rejected(machine):
    with pytest.raises(ValueError, match="cycle metric"):
        PhaseTuningRuntime(machine, cycle_metric="bogus")


def test_core_cycle_metric_prefers_slow_for_memory(machine):
    runtime = _runtime(machine, delta=0.05, cycle_metric="core")
    proc = _proc(machine)
    fast_core, slow_core = machine.cores[0], machine.cores[2]
    runtime.on_mark(proc, 0, 1, fast_core, 0.0)
    _feed_sample(proc, "fast", 2000.0, 10_000.0)  # IPC 0.2.
    runtime.on_mark(proc, 0, 1, fast_core, 1.0)
    runtime.on_mark(proc, 0, 1, slow_core, 2.0)
    _feed_sample(proc, "slow", 3000.0, 10_000.0)  # IPC 0.3.
    runtime.on_mark(proc, 0, 1, slow_core, 3.0)
    assert proc.tuner_state[1].decided.name == "slow"


def test_feedback_resampling(machine):
    runtime = _runtime(machine, resample_after=3)
    proc = _proc(machine)
    state = runtime._state(proc, 1)
    state.decided = machine.core_types()[0]
    for i in range(3):
        runtime.on_mark(proc, 0, 1, machine.cores[0], float(i))
    # The third firing triggered a reset back to exploration.
    assert runtime.resamples == 1
    assert proc.tuner_state[1].decided is None


def test_switch_to_all_runtime(machine):
    runtime = SwitchToAllRuntime(machine)
    proc = _proc(machine)
    action = runtime.on_mark(proc, 0, 1, machine.cores[0], 0.0)
    assert action.affinity == machine.all_cores_mask
    assert action.extra_cycles > 0
    assert runtime.assignment_for(proc, 1) is None
    runtime.on_process_end(proc, 1.0)  # No-op, must not raise.
