"""Tests for the paper's Section VI discussion features.

VI-A multi-threaded applications, VI-B feedback adaptation under
changing core behaviour, VI-C many-core scalability.
"""

import pytest

from repro.experiments import ExperimentConfig, extras
from repro.instrument import LoopStrategy, instrument
from repro.sim import (
    Simulation,
    TraceGenerator,
    core2quad_amp,
    many_core_amp,
    spawn_thread_group,
)
from repro.sim.process import Trace
from repro.tuning import PhaseTuningRuntime
from tests.conftest import make_phased_program


def test_thread_group_shares_tuner_state(machine):
    program, spec = make_phased_program(outer=6)
    generator = TraceGenerator(machine)
    trace = generator.generate(program, spec)
    group = spawn_thread_group(
        10, "app", [Trace(trace.nodes) for _ in range(3)],
        machine.all_cores_mask, isolated_time=1.0,
    )
    assert [t.pid for t in group] == [10, 11, 12]
    assert all(t.tuner_state is group[0].tuner_state for t in group)
    assert group[0].name == "app/t0"


def test_threads_reuse_sibling_decisions(machine):
    """Once any thread decides a phase type, siblings switch without
    re-exploring: total decisions <= phase types, not threads x types."""
    program, spec = make_phased_program(
        compute_iters=200_000, memory_iters=100_000, outer=10
    )
    inst = instrument(program, LoopStrategy(20))
    generator = TraceGenerator(machine)
    trace = generator.generate(inst, spec)
    runtime = PhaseTuningRuntime(machine, 0.12, monitor_noise=0.0)
    sim = Simulation(machine, runtime=runtime)
    group = spawn_thread_group(
        1, "app", [Trace(trace.nodes) for _ in range(4)],
        machine.all_cores_mask, isolated_time=1.0,
    )
    for thread in group:
        sim.add_process(thread, 0.0)
    result = sim.run(10_000.0)
    assert len(result.completed) == 4
    phase_types = set(group[0].tuner_state)
    assert phase_types
    # One decision per phase type, shared by all four threads.
    assert runtime.decisions <= len(phase_types)


def test_multithreaded_comparison_runs():
    result = extras.multithreaded_comparison(threads=2)
    assert result.decisions_shared
    assert result.tuned_makespan > 0
    assert result.baseline_makespan > 0


def test_feedback_adaptation_beats_stale_decisions():
    """Section VI-B: when hogs pollute the fast pair mid-run, the
    re-sampling runtime escapes; the one-shot runtime cannot."""
    result = extras.feedback_adaptation()
    assert result.resamples > 0
    assert result.feedback_gain > 10.0


def test_many_core_machine_layout():
    machine = many_core_amp(4, 4)
    assert len(machine) == 8
    fast, slow = machine.core_types()
    assert len(machine.cores_of_type(fast)) == 4
    assert len(machine.cores_of_type(slow)) == 4
    # Paired L2s throughout.
    for core in machine.cores:
        assert len(machine.l2_neighbors(core.cid)) == 1


def test_many_core_speedup_runs():
    config = ExperimentConfig(slots=16, interval=60.0, seed=101)
    result = extras.many_core_speedup(config, fast_cores=4, slow_cores=4)
    # The technique must not collapse when core count doubles.
    assert result.throughput_improvement > -5.0


def test_runtime_monitoring_cost_independent_of_core_count(machine):
    """VI-C's scalability answer: exploration is per core *type*."""
    program, spec = make_phased_program(outer=8)
    inst = instrument(program, LoopStrategy(20))

    def exploration_switches(machine_config):
        generator = TraceGenerator(machine_config)
        trace = generator.generate(inst, spec)
        runtime = PhaseTuningRuntime(machine_config, 0.12, monitor_noise=0.0)
        sim = Simulation(machine_config, runtime=runtime)
        from repro.sim import SimProcess

        proc = SimProcess(
            1, "p", Trace(trace.nodes),
            machine_config.all_cores_mask, isolated_time=1.0,
        )
        sim.add_process(proc, 0.0)
        sim.run(10_000.0)
        return proc.stats.switches

    small = exploration_switches(core2quad_amp())
    large = exploration_switches(many_core_amp(8, 8))
    # Two core types either way: the same exploration effort.
    assert large <= small + 2
