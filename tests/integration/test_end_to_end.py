"""Integration tests: the whole pipeline, assembly to speedup."""

import pytest

from repro import (
    LoopStrategy,
    PhaseTuningRuntime,
    Simulation,
    SimProcess,
    TraceGenerator,
    core2quad_amp,
    instrument,
    tune_program,
)
from repro.metrics import fairness_report
from repro.sim import BehaviorSpec
from repro.workloads import Workload, WorkloadRun
from tests.conftest import make_phased_program


def test_assembly_to_simulation(machine):
    """Assemble a program textually, tune it, run it, see phases pinned."""
    from repro.isa import assemble

    source = (
        ".region BIG 33554432\n.proc main\n    movi r1, 0\nouter:\n"
        "    movi r2, 0\ncompute:\n"
        + "    fmul f1, f1, f2\n" * 48
        + "    add r2, r2, 1\n    cmp r2, 200000\n    br lt, compute\n"
        "    movi r3, 0\nmemory:\n"
        + "    load r4, BIG[r3]:4\n" * 24
        + "    add r3, r3, 1\n    cmp r3, 100000\n    br lt, memory\n"
        "    add r1, r1, 1\n    cmp r1, 8\n    br lt, outer\n"
        "    ret\n.endproc\n"
    )
    program = assemble(source)
    spec = BehaviorSpec(
        trip_counts={
            ("main", "outer"): 8,
            ("main", "compute"): 200_000,
            ("main", "memory"): 100_000,
        }
    )
    tuned = tune_program(program, LoopStrategy(20), machine, spec)
    assert tuned.mark_count == 2

    runtime = PhaseTuningRuntime(machine, 0.12, monitor_noise=0.0)
    sim = Simulation(machine, runtime=runtime)
    proc = SimProcess(
        1, "demo", tuned.tuned_trace, machine.all_cores_mask, isolated_time=1.0
    )
    sim.add_process(proc, 0.0)
    sim.run(1000.0)
    assert proc.finished
    # The compute phase type was decided for the fast cores.
    decided = {
        pt: st.decided for pt, st in proc.tuner_state.items() if st.decided
    }
    assert any(
        getattr(d, "name", None) == "fast" for d in decided.values()
    )


def test_baseline_vs_tuned_same_queues(machine):
    """The paper's comparison discipline: identical queues both ways."""
    workload = Workload.random(
        6, seed=13, benchmarks=("183.equake", "172.mgrid", "175.vpr", "181.mcf")
    )
    base = WorkloadRun(workload, machine).run(40.0)
    tuned = WorkloadRun(workload, machine, LoopStrategy(45)).run(
        40.0, runtime=PhaseTuningRuntime(machine, 0.12)
    )
    def per_slot(result):
        sequences = {}
        for p in sorted(result.completed, key=lambda p: p.completion):
            sequences.setdefault(p.slot, []).append(p.name)
        return sequences

    base_slots, tuned_slots = per_slot(base), per_slot(tuned)
    # Per slot, both runs walked the same queue: one completed sequence
    # is a prefix of the other (they may differ in how far they got).
    for slot in set(base_slots) | set(tuned_slots):
        a = base_slots.get(slot, [])
        b = tuned_slots.get(slot, [])
        shorter = min(len(a), len(b))
        assert a[:shorter] == b[:shorter]


def test_tuning_pins_compute_and_frees_memory(machine):
    """Steady state: compute phases on fast cores, memory phases free."""
    program, spec = make_phased_program(
        compute_iters=200_000, memory_iters=100_000, outer=12
    )
    inst = instrument(program, LoopStrategy(20))
    generator = TraceGenerator(machine)
    runtime = PhaseTuningRuntime(machine, 0.12, monitor_noise=0.0)
    sim = Simulation(machine, runtime=runtime)
    proc = SimProcess(
        1, "phased", generator.generate(inst, spec),
        machine.all_cores_mask, isolated_time=1.0,
    )
    sim.add_process(proc, 0.0)
    sim.run(1000.0)
    decided = {pt: st.decided for pt, st in proc.tuner_state.items()}
    names = {getattr(d, "name", d) for d in decided.values()}
    assert "fast" in names          # Compute pinned fast.
    assert "free" in names          # Memory unconstrained.


def test_switch_counting_matches_migrations(machine):
    program, spec = make_phased_program(
        compute_iters=300_000, memory_iters=200_000, outer=10
    )
    inst = instrument(program, LoopStrategy(20))
    generator = TraceGenerator(machine)
    sim = Simulation(machine, runtime=PhaseTuningRuntime(machine, 0.12))
    proc = SimProcess(
        1, "p", generator.generate(inst, spec),
        machine.all_cores_mask, isolated_time=1.0,
    )
    # A competitor keeps the balancer active so migrations can happen.
    competitor = SimProcess(
        2, "q", generator.generate(program, spec),
        machine.all_cores_mask, isolated_time=1.0,
    )
    sim.add_process(proc, 0.0)
    sim.add_process(competitor, 0.0)
    sim.run(1000.0)
    assert proc.stats.switches == proc.stats.migrations
    assert proc.stats.mark_firings > 0


def test_fairness_report_from_real_run(machine):
    workload = Workload.random(4, seed=3, benchmarks=("164.gzip", "179.art"))
    result = WorkloadRun(workload, machine).run(30.0)
    report = fairness_report(result.completed)
    assert report.max_flow >= report.average_time
    assert report.max_stretch >= 1.0


def test_determinism_of_full_runs(machine):
    """Identical configurations give bit-identical results."""
    def run_once():
        workload = Workload.random(4, seed=21, benchmarks=("183.equake",))
        result = WorkloadRun(workload, machine, LoopStrategy(45)).run(
            20.0, runtime=PhaseTuningRuntime(machine, 0.12)
        )
        return [
            (p.pid, p.name, p.completion, p.stats.instructions)
            for p in result.completed
        ]

    assert run_once() == run_once()
