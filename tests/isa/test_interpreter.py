"""Unit tests for the reference interpreter."""

import pytest

from repro.isa import assemble
from repro.isa.interpreter import InterpreterError, run_program


def _run(source, **kw):
    return run_program(assemble(source), **kw)


def test_arithmetic():
    state = _run(
        """
        .proc main
            movi r1, 6
            movi r2, 7
            mul r3, r1, r2
            add r4, r3, 8
            sub r5, r4, 50
            div r6, r4, 10
            ret
        .endproc
        """
    )
    assert state.read_int_by_name("r3") == 42
    assert state.read_int_by_name("r4") == 50
    assert state.read_int_by_name("r5") == 0
    assert state.read_int_by_name("r6") == 5


def test_loop_executes_trip_count():
    state = _run(
        """
        .proc main
            movi r1, 0
        loop:
            add r1, r1, 1
            cmp r1, 10
            br lt, loop
            ret
        .endproc
        """
    )
    assert state.read_int_by_name("r1") == 10
    # The loop block ran ten times.
    assert state.block_counts[("main", 1)] == 10


def test_branch_conditions():
    state = _run(
        """
        .proc main
            movi r1, 5
            cmp r1, 5
            br eq, equal
            movi r2, 0
            ret
        equal:
            movi r2, 1
            ret
        .endproc
        """
    )
    assert state.read_int_by_name("r2") == 1


def test_signed_comparison():
    state = _run(
        """
        .proc main
            movi r1, 0
            sub r1, r1, 5
            cmp r1, 3
            br lt, neg
            movi r2, 0
            ret
        neg:
            movi r2, 1
            ret
        .endproc
        """
    )
    assert state.read_int_by_name("r2") == 1  # -5 < 3 with signed compare.


def test_memory_roundtrip():
    state = _run(
        """
        .region A 4096
        .proc main
            movi r1, 3
            movi r2, 99
            store A[r1]:8, r2
            load r3, A[r1]:8
            ret
        .endproc
        """
    )
    assert state.read_int_by_name("r3") == 99
    assert state.memory[("A", 24)] == 99


def test_uninitialised_memory_deterministic():
    a = _run(".region A 64\n.proc main\n    load r1, A@8\n    ret\n.endproc")
    b = _run(".region A 64\n.proc main\n    load r1, A@8\n    ret\n.endproc")
    assert a.read_int_by_name("r1") == b.read_int_by_name("r1")


def test_stack_push_pop():
    state = _run(
        """
        .proc main
            movi r1, 11
            movi r2, 22
            push r1
            push r2
            pop r3
            pop r4
            ret
        .endproc
        """
    )
    assert state.read_int_by_name("r3") == 22
    assert state.read_int_by_name("r4") == 11
    assert state.stack == []


def test_calls_and_returns():
    state = _run(
        """
        .proc main
            movi r1, 1
            call bump
            call bump
            ret
        .endproc
        .proc bump
            add r1, r1, 10
            ret
        .endproc
        """
    )
    assert state.read_int_by_name("r1") == 21


def test_float_ops():
    state = _run(
        """
        .proc main
            fmov f1, f2
            fadd f1, f1, f1
            fmul f3, f1, f1
            ret
        .endproc
        """
    )
    assert state.fregs["f1"] == pytest.approx(2.0)  # Registers start at 1.0.
    assert state.fregs["f3"] == pytest.approx(4.0)


def test_syscall_recorded():
    state = _run(
        """
        .proc main
            movi r0, 7
            movi r1, 9
            sys 4
            ret
        .endproc
        """
    )
    assert state.syscalls == [(4, 7, 9)]


def test_division_by_zero_rejected():
    with pytest.raises(InterpreterError, match="division by zero"):
        _run(".proc main\n    movi r1, 0\n    div r2, r1, r1\n    ret\n.endproc")


def test_stack_underflow_rejected():
    with pytest.raises(InterpreterError, match="underflow"):
        _run(".proc main\n    pop r1\n    ret\n.endproc")


def test_indirect_jump_rejected():
    with pytest.raises(InterpreterError, match="indirect"):
        _run(".proc main\n    jmpi r1\n.endproc")


def test_step_budget():
    source = """
    .proc main
    loop:
        add r1, r1, 1
        jmp loop
    .endproc
    """
    with pytest.raises(InterpreterError, match="budget"):
        _run(source, max_steps=1000)


def test_recursion_depth_limit():
    source = """
    .proc main
        call main
        ret
    .endproc
    """
    with pytest.raises(InterpreterError, match="call depth"):
        _run(source)
