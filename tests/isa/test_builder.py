"""Unit tests for the programmatic builder."""

import pytest

from repro.errors import ProgramStructureError
from repro.isa import ProgramBuilder
from repro.isa.builder import ProcedureBuilder
from repro.isa.instructions import Opcode
from repro.program import validate_program


def test_builder_produces_valid_program():
    pb = ProgramBuilder("t")
    pb.region("A", 1024)
    with pb.proc("main") as b:
        b.movi("r1", 0)
        b.label("loop")
        b.load("r2", "A", index="r1", stride=8)
        b.add("r1", "r1", 1)
        b.cmp("r1", 10)
        b.br("lt", "loop")
        b.ret()
    program = pb.build()
    assert validate_program(program) == []
    assert program["main"].code[0].opcode is Opcode.MOVI


def test_fluent_chaining():
    b = ProcedureBuilder("p")
    b.movi("r1", 1).add("r2", "r1", 1).ret()
    proc = b.build()
    assert len(proc.code) == 3


def test_duplicate_label_rejected():
    b = ProcedureBuilder("p")
    b.label("x")
    b.nop()
    with pytest.raises(ProgramStructureError, match="duplicate label"):
        b.label("x")


def test_fresh_labels_are_unique():
    b = ProcedureBuilder("p")
    names = {b.fresh_label() for _ in range(10)}
    assert len(names) == 10


def test_duplicate_procedure_rejected():
    pb = ProgramBuilder("t")
    with pb.proc("main") as b:
        b.ret()
    with pytest.raises(ProgramStructureError, match="duplicate procedure"):
        pb.proc("main")


def test_context_manager_discards_on_error():
    pb = ProgramBuilder("t")
    with pytest.raises(RuntimeError):
        with pb.proc("broken") as b:
            b.nop()
            raise RuntimeError("boom")
    # The broken procedure was not registered; main can still be added.
    with pb.proc("main") as b:
        b.ret()
    assert "broken" not in pb.build()


def test_string_and_register_operands_equivalent():
    from repro.isa.registers import Register

    b1 = ProcedureBuilder("p")
    b1.add("r1", "r2", "r3").ret()
    b2 = ProcedureBuilder("p")
    b2.add(Register.get("r1"), Register.get("r2"), Register.get("r3")).ret()
    assert [str(i) for i in b1.build().code] == [str(i) for i in b2.build().code]


def test_position_tracks_emission():
    b = ProcedureBuilder("p")
    assert b.position == 0
    b.nop()
    assert b.position == 1
