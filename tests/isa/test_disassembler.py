"""Round-trip tests for the disassembler."""

from repro.isa import assemble, disassemble
from repro.isa.disassembler import render_instruction


def _roundtrip(source: str) -> None:
    program = assemble(source)
    text = disassemble(program)
    again = assemble(text)
    assert disassemble(again) == text
    # Structural equality.
    assert set(again.procedures) == set(program.procedures)
    for name, proc in program.procedures.items():
        assert [str(i) for i in again[name].code] == [str(i) for i in proc.code]
        assert again[name].labels == proc.labels
    assert again.entry == program.entry
    assert set(again.regions) == set(program.regions)


def test_roundtrip_simple():
    _roundtrip(".proc main\n    movi r1, 3\n    ret\n.endproc")


def test_roundtrip_loops_and_memory():
    _roundtrip(
        """
        .region A 65536
        .proc main
            movi r1, 0
        loop:
            load r2, A[r1]:8
            store A[r1]:8, r2
            add r1, r1, 1
            cmp r1, 100
            br lt, loop
            ret
        .endproc
        """
    )


def test_roundtrip_calls_and_regions_with_hot_fraction():
    _roundtrip(
        """
        .region H 1048576 hot=0.25
        .proc main
            call helper
            ret
        .endproc
        .proc helper
            load r1, H@8
            sys 3
            ret
        .endproc
        """
    )


def test_roundtrip_all_alu_forms(loop_program):
    _roundtrip(
        """
        .proc main
            add r1, r2, r3
            sub r1, r2, 5
            mul r4, r4, r4
            div r5, r5, 3
            and r6, r6, r7
            or r6, r6, r7
            xor r6, r6, r7
            shl r6, r6, 1
            shr r6, r6, 1
            mov r8, r9
            fadd f1, f2, f3
            fsub f1, f2, f3
            fmul f1, f2, f3
            fdiv f1, f2, f3
            fmov f4, f5
            push r1
            pop r1
            jmpi r1
        .endproc
        """
    )


def test_render_instruction_matches_assembler_syntax():
    program = assemble(".proc main\n    movi r7, 99\n    ret\n.endproc")
    rendered = render_instruction(program["main"].code[0])
    assert rendered == "movi r7, 99"
