"""Unit tests for the register file."""

import pytest

from repro.isa.registers import FPR, GPR, SP, Register


def test_register_counts():
    assert len(GPR) == 16
    assert len(FPR) == 16


def test_interning():
    assert Register.get("r3") is GPR[3]
    assert Register.get("f7") is FPR[7]
    assert Register.get("sp") is SP


def test_float_flag():
    assert FPR[0].is_float
    assert not GPR[0].is_float
    assert not SP.is_float


def test_exists():
    assert Register.exists("r15")
    assert not Register.exists("r16")
    assert not Register.exists("bogus")


def test_get_unknown_raises():
    with pytest.raises(KeyError):
        Register.get("zz")
