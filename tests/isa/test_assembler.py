"""Unit tests for the textual assembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa import assemble
from repro.isa.instructions import CondCode, Opcode


def test_minimal_program():
    program = assemble(".proc main\n    ret\n.endproc")
    assert "main" in program
    assert len(program["main"].code) == 1
    assert program["main"].code[0].opcode is Opcode.RET


def test_labels_resolve():
    program = assemble(
        """
        .proc main
        top:
            add r1, r1, 1
            jmp top
        .endproc
        """
    )
    assert program["main"].labels["top"] == 0


def test_regions_and_memory_operands():
    program = assemble(
        """
        .region A 4096
        .region B 8192 hot=0.5
        .proc main
            load r1, A[r2]:8
            store B[r2]:16, r1
            load r3, A@64
            ret
        .endproc
        """
    )
    assert program.region("A").size == 4096
    assert program.region("B").hot_fraction == 0.5
    load, store, scalar, _ = program["main"].code
    assert load.mem.stride == 8
    assert store.mem.stride == 16
    assert scalar.mem.offset == 64
    assert scalar.mem.stride == 0


def test_condition_codes():
    program = assemble(
        """
        .proc main
        l:
            cmp r1, r2
            br ne, l
            ret
        .endproc
        """
    )
    br = program["main"].code[1]
    assert br.operands[0] is CondCode.NE


def test_comments_and_blank_lines_ignored():
    program = assemble(
        """
        ; leading comment
        .proc main

            nop   ; trailing comment
            ret
        .endproc
        """
    )
    assert len(program["main"].code) == 2


def test_entry_directive():
    program = assemble(
        """
        .entry start
        .proc start
            ret
        .endproc
        """
    )
    assert program.entry == "start"


def test_alu_accepts_literals():
    program = assemble(".proc main\n    add r1, r2, 42\n    ret\n.endproc")
    assert program["main"].code[0].operands[2] == 42


@pytest.mark.parametrize(
    "source, fragment",
    [
        ("nop", "outside a procedure"),
        (".proc main\n    bogus r1\n.endproc", "unknown opcode"),
        (".proc main\n    add r1, r2\n.endproc", "expects 3 operand"),
        (".proc main\n    br xx, l\n.endproc", "unknown condition"),
        (".proc main\n    load r1, A[zz]:8\n.endproc", "unknown index register"),
        (".proc main\nl:\nl:\n    ret\n.endproc", "duplicate label"),
        (".proc main\n    ret\n", "unterminated"),
        (".proc main\n.endproc", "empty"),
        (".proc a\n    ret\n.endproc", "entry procedure 'main'"),
    ],
)
def test_errors_are_reported(source, fragment):
    with pytest.raises(AssemblyError, match=fragment):
        assemble(source)


def test_error_carries_line_number():
    with pytest.raises(AssemblyError) as excinfo:
        assemble(".proc main\n    bogus\n.endproc")
    assert excinfo.value.line == 2
