"""Unit tests for the instruction set."""

import pytest

from repro.isa.instructions import (
    CondCode,
    Instruction,
    InstrClass,
    MemAccess,
    Opcode,
    OPCODE_CLASS,
)
from repro.isa.registers import GPR


def test_every_opcode_has_a_class():
    assert set(OPCODE_CLASS) == set(Opcode)


def test_iclass_lookup():
    assert Instruction(Opcode.ADD, (GPR[0], GPR[1], GPR[2])).iclass is InstrClass.IALU
    assert Instruction(Opcode.FMUL, (GPR[0], GPR[1], GPR[2])).iclass is InstrClass.FMUL
    assert Instruction(Opcode.RET).iclass is InstrClass.RET


def test_conditional_branch_predicates():
    br = Instruction(Opcode.BR, (CondCode.LT, "loop"))
    assert br.is_cond_branch
    assert not br.is_terminator  # Fall-through exists.
    assert br.ends_block
    assert br.label_target == "loop"


def test_jump_predicates():
    jmp = Instruction(Opcode.JMP, ("exit",))
    assert jmp.is_jump
    assert jmp.is_terminator
    assert jmp.ends_block
    assert jmp.label_target == "exit"


def test_indirect_jump_has_no_static_target():
    jmpi = Instruction(Opcode.JMPI, (GPR[3],))
    assert jmpi.is_jump
    assert jmpi.is_terminator
    assert jmpi.label_target is None


def test_call_predicates():
    call = Instruction(Opcode.CALL, ("helper",))
    assert call.is_call
    assert call.call_target == "helper"
    assert not call.ends_block
    calli = Instruction(Opcode.CALLI, (GPR[1],))
    assert calli.is_call
    assert calli.call_target is None


def test_ret_is_terminator():
    ret = Instruction(Opcode.RET)
    assert ret.is_ret
    assert ret.is_terminator
    assert ret.ends_block


def test_memory_predicates():
    load = Instruction(
        Opcode.LOAD, (GPR[0],), mem=MemAccess("A", 8, GPR[1])
    )
    assert load.touches_memory
    assert load.mem.region == "A"
    push = Instruction(Opcode.PUSH, (GPR[0],))
    assert push.touches_memory
    add = Instruction(Opcode.ADD, (GPR[0], GPR[1], GPR[2]))
    assert not add.touches_memory


def test_instruction_is_immutable():
    instr = Instruction(Opcode.NOP)
    with pytest.raises(AttributeError):
        instr.opcode = Opcode.RET


def test_str_rendering():
    instr = Instruction(Opcode.ADD, (GPR[1], GPR[2], 3))
    assert str(instr) == "add r1, r2, 3"
    load = Instruction(Opcode.LOAD, (GPR[0],), mem=MemAccess("A", 8, GPR[1]))
    assert "A" in str(load)
    assert ":8" in str(load)


def test_memaccess_scalar_rendering():
    mem = MemAccess("G", 0, None, 16)
    assert "@16" in str(mem)
