"""Unit tests for the byte-size encoding model."""

from repro.isa.encoding import code_size, instruction_size
from repro.isa.instructions import Instruction, MemAccess, Opcode
from repro.isa.registers import GPR


def test_all_opcodes_have_sizes():
    for opcode in Opcode:
        instr = Instruction(opcode)
        assert instruction_size(instr) > 0


def test_relative_sizes_are_sane():
    """Immediates and displacements cost more than register forms."""
    reg_form = Instruction(Opcode.ADD, (GPR[0], GPR[1], GPR[2]))
    imm_form = Instruction(Opcode.MOVI, (GPR[0], 7))
    ret = Instruction(Opcode.RET)
    assert instruction_size(imm_form) > instruction_size(reg_form)
    assert instruction_size(ret) == 1


def test_code_size_is_additive():
    instrs = [
        Instruction(Opcode.MOVI, (GPR[0], 1)),
        Instruction(Opcode.ADD, (GPR[1], GPR[0], GPR[0])),
        Instruction(Opcode.RET),
    ]
    assert code_size(instrs) == sum(instruction_size(i) for i in instrs)
    assert code_size([]) == 0


def test_load_store_sizes_match():
    load = Instruction(Opcode.LOAD, (GPR[0],), mem=MemAccess("A", 8))
    store = Instruction(Opcode.STORE, (GPR[0],), mem=MemAccess("A", 8))
    assert instruction_size(load) == instruction_size(store)
