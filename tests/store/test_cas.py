"""Unit tests for the content-addressed store tiers."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import StoreCorruptionError, StoreError
from repro.store import (
    HTTPStore,
    LocalStore,
    TieredStore,
    default_store,
    object_digest,
    parse_store_url,
    remote_tiers,
)
from repro.store.server import make_server


@pytest.fixture
def served_store(tmp_path):
    """A LocalStore served over HTTP on an ephemeral port."""
    directory = tmp_path / "served"
    server = make_server(directory)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield LocalStore(directory), HTTPStore(
            f"http://{host}:{port}", timeout=5.0, cooldown=0.2
        )
    finally:
        server.shutdown()
        server.server_close()


# -- LocalStore -------------------------------------------------------------


def test_local_put_get_roundtrip(tmp_path):
    store = LocalStore(tmp_path)
    digest = store.put(b"artifact")
    assert digest == object_digest(b"artifact")
    assert store.has(digest)
    assert store.get(digest) == b"artifact"
    assert store.objects() == [digest]
    assert store.size_bytes() == len(b"artifact")


def test_local_put_is_idempotent(tmp_path):
    store = LocalStore(tmp_path)
    assert store.put(b"same") == store.put(b"same")
    assert len(store.objects()) == 1


def test_local_put_rejects_digest_mismatch(tmp_path):
    store = LocalStore(tmp_path)
    with pytest.raises(StoreError, match="mismatch"):
        store.put(b"data", "0" * 64)


def test_local_get_missing_is_none(tmp_path):
    store = LocalStore(tmp_path)
    assert store.get("0" * 64) is None
    assert not store.has("0" * 64)


def test_local_rejects_malformed_digest(tmp_path):
    store = LocalStore(tmp_path)
    with pytest.raises(StoreError, match="digest"):
        store.get("../../../etc/passwd")


def test_corrupt_object_quarantined_on_read(tmp_path):
    store = LocalStore(tmp_path)
    digest = store.put(b"good bytes")
    store._object_path(digest).write_bytes(b"bad bytes")
    with pytest.raises(StoreCorruptionError, match="verification"):
        store.get(digest)
    # The damaged file is out of the addressable layout: the next read
    # is a clean miss, and the evidence is preserved in quarantine/.
    assert store.get(digest) is None
    assert list((tmp_path / "quarantine").iterdir())
    assert store.stats.corruptions == 1


def test_refs_roundtrip_and_listing(tmp_path):
    store = LocalStore(tmp_path)
    d1 = store.put(b"one")
    d2 = store.put(b"two")
    store.set_ref("pipeline/typing-abc", d1)
    store.set_ref("ckpt/deadbeef/baseline", d2)
    assert store.get_ref("pipeline/typing-abc") == d1
    assert store.refs("pipeline") == {"pipeline/typing-abc": d1}
    assert store.refs() == {
        "pipeline/typing-abc": d1,
        "ckpt/deadbeef/baseline": d2,
    }
    assert store.get_ref("pipeline/nope") is None


def test_ref_names_validated(tmp_path):
    store = LocalStore(tmp_path)
    digest = store.put(b"x")
    for bad in ("../escape", "a//b", "", "a/../b", "sp ace"):
        with pytest.raises(StoreError, match="ref"):
            store.set_ref(bad, digest)


def test_torn_ref_is_dropped_not_trusted(tmp_path):
    store = LocalStore(tmp_path)
    store.put(b"x")
    path = tmp_path / "refs" / "pipeline" / "torn"
    path.parent.mkdir(parents=True)
    path.write_text("not-a-digest")
    assert store.get_ref("pipeline/torn") is None
    assert not path.exists()


def test_gc_drops_unreferenced_objects(tmp_path):
    store = LocalStore(tmp_path)
    live = store.put(b"live object")
    store.put(b"orphan one")
    store.put(b"orphan two!")
    store.set_ref("pipeline/live", live)
    removed, freed = store.gc()
    assert removed == 2
    assert freed == len(b"orphan one") + len(b"orphan two!")
    assert store.objects() == [live]
    assert store.get(live) == b"live object"


def test_gc_keep_set_protects_objects(tmp_path):
    store = LocalStore(tmp_path)
    kept = store.put(b"kept")
    removed, _ = store.gc(keep=[kept])
    assert removed == 0
    assert store.has(kept)


# -- HTTPStore + server -----------------------------------------------------


def test_http_roundtrip_and_refs(served_store):
    _, remote = served_store
    digest = remote.put(b"over the wire")
    assert remote.has(digest)
    assert remote.get(digest) == b"over the wire"
    assert remote.set_ref("pipeline/x", digest)
    assert remote.get_ref("pipeline/x") == digest
    assert remote.refs("pipeline") == {"pipeline/x": digest}


def test_http_404_is_negative_cached(served_store):
    _, remote = served_store
    missing = "0" * 64
    assert remote.get(missing) is None
    # Second lookup inside the cooldown is answered from the negative
    # cache (no request); then the entry expires and a fresh probe
    # still misses.
    assert remote._unavailable(missing)
    assert remote.get(missing) is None


def test_http_write_after_negative_lookup_still_lands(served_store):
    # The push/publish pattern is check-then-write: a 404 on the check
    # is negative-cached, but writes must respect only the breaker —
    # a put is exactly how a remembered miss becomes a hit.
    local, remote = served_store
    probe = HTTPStore(remote.url, timeout=5.0, cooldown=60.0)
    data = b"late arrival"
    digest = object_digest(data)
    assert not probe.has(digest)
    assert probe.get_ref("pipeline/late") is None
    assert probe.put(data, digest) == digest
    assert probe.set_ref("pipeline/late", digest)
    assert local.get(digest) == data
    assert local.get_ref("pipeline/late") == digest
    # The successful writes also cleared the remembered misses.
    assert probe.get(digest) == data
    assert probe.get_ref("pipeline/late") == digest


def test_http_server_rejects_poisoned_put(served_store):
    local, remote = served_store
    digest = object_digest(b"honest")
    req = urllib.request.Request(
        f"{remote.url}/obj/{digest}", data=b"poison", method="PUT"
    )
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        urllib.request.urlopen(req, timeout=5)
    assert exc_info.value.code == 400
    assert not local.has(digest)


def test_http_server_refuses_ref_before_object(served_store):
    local, remote = served_store
    digest = object_digest(b"never uploaded")
    req = urllib.request.Request(
        f"{remote.url}/ref/pipeline/dangling",
        data=digest.encode(), method="PUT",
    )
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        urllib.request.urlopen(req, timeout=5)
    assert exc_info.value.code == 409
    assert local.get_ref("pipeline/dangling") is None


def test_http_server_serves_stats(served_store):
    _, remote = served_store
    remote.put(b"counted")
    with urllib.request.urlopen(f"{remote.url}/stats", timeout=5) as resp:
        stats = json.loads(resp.read())
    assert stats["objects"] == 1


def test_dead_tier_trips_breaker_and_recovers_nothing(monkeypatch):
    dead = HTTPStore("http://127.0.0.1:9", timeout=0.2, cooldown=60.0)
    assert dead.get(object_digest(b"x")) is None
    assert dead.tripped
    assert dead.stats.errors == 1
    # Within the cooldown every operation is an instant miss — no
    # further transport errors are even attempted.
    assert dead.get_ref("pipeline/x") is None
    assert dead.put(b"y") is None
    assert not dead.set_ref("pipeline/y", object_digest(b"y"))
    assert dead.refs() == {}
    assert dead.stats.errors == 1


def test_honest_server_hides_corrupt_object(served_store):
    local, remote = served_store
    digest = remote.put(b"will be damaged")
    # Damage the object server-side, bypassing the PUT verification.
    local._object_path(digest).write_bytes(b"damaged")
    # The server verifies on read: the client sees a plain 404 and the
    # damaged file lands in the server's quarantine.
    assert remote.get(digest) is None
    assert list((local.root / "quarantine").iterdir())


def test_client_rejects_corrupt_bytes_from_dumb_server():
    """A tier that ships wrong bytes (mid-rsync directory, buggy proxy)
    is caught by the client-side re-hash, not trusted."""
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    digest = object_digest(b"what was promised")

    class DumbHandler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):
            pass

        def do_GET(self):
            body = b"something else entirely"
            self.send_response(200)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    server = ThreadingHTTPServer(("127.0.0.1", 0), DumbHandler)
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        remote = HTTPStore(f"http://{host}:{port}", timeout=5.0,
                           cooldown=60.0)
        with pytest.raises(StoreCorruptionError, match="verification"):
            remote.get(digest)
        assert remote.stats.corruptions == 1
        # Negative-cached: the tier answers miss without re-fetching.
        assert remote.get(digest) is None
    finally:
        server.shutdown()
        server.server_close()


# -- TieredStore ------------------------------------------------------------


def test_tiered_fetch_promotes_into_faster_tiers(tmp_path):
    shared = LocalStore(tmp_path / "shared")
    digest = shared.put(b"warm artifact")
    shared.set_ref("pipeline/warm", digest)
    local = LocalStore(tmp_path / "local")
    tiered = TieredStore(local=local, remotes=[shared])
    assert tiered.fetch("pipeline/warm") == b"warm artifact"
    # Promoted: local tier now holds both the object and the ref.
    assert local.get(digest) == b"warm artifact"
    assert local.get_ref("pipeline/warm") == digest
    # And the memory tier answers the repeat without touching disk.
    assert tiered.fetch("pipeline/warm") == b"warm artifact"
    assert tiered.memory_hits == 1


def test_tiered_publish_writes_all_writable_tiers(tmp_path):
    local = LocalStore(tmp_path / "local")
    shared = LocalStore(tmp_path / "shared")
    tiered = TieredStore(local=local, remotes=[shared], push_remotes=True)
    digest = tiered.publish("ckpt/abc123", b"snapshot")
    assert local.get_ref("ckpt/abc123") == digest
    assert shared.get_ref("ckpt/abc123") == digest
    assert shared.get(digest) == b"snapshot"


def test_tiered_corrupt_remote_falls_through(tmp_path):
    shared = LocalStore(tmp_path / "shared")
    digest = shared.put(b"payload")
    shared.set_ref("pipeline/entry", digest)
    shared._object_path(digest).write_bytes(b"flipped bits")
    tiered = TieredStore(local=LocalStore(tmp_path / "local"),
                         remotes=[shared])
    assert tiered.fetch("pipeline/entry") is None
    assert tiered.get_object(digest) is None


def test_tiered_stats_shape(tmp_path):
    tiered = TieredStore(local=LocalStore(tmp_path))
    tiered.publish("pipeline/x", b"x")
    stats = tiered.stats()
    assert "memory" in stats["tiers"]
    assert any(name.startswith("dir:") for name in stats["tiers"])


# -- configuration ----------------------------------------------------------


def test_parse_store_url_mixes_tiers(tmp_path):
    tiers = parse_store_url(
        f"http://example.invalid:1, {tmp_path}, ,https://two.invalid"
    )
    assert [type(tier).__name__ for tier in tiers] == [
        "HTTPStore", "LocalStore", "HTTPStore",
    ]


def test_default_store_unconfigured_is_none(monkeypatch):
    monkeypatch.delenv("REPRO_STORE_URL", raising=False)
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    assert default_store() is None


def test_default_store_rebuilt_on_env_change(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "a"))
    monkeypatch.delenv("REPRO_STORE_URL", raising=False)
    first = default_store()
    assert first is not None and first.local is not None
    assert default_store() is first  # cached while the env is stable
    monkeypatch.setenv("REPRO_STORE_URL", str(tmp_path / "b"))
    second = default_store()
    assert second is not first
    assert len(second.remotes) == 1
    assert remote_tiers() == second.remotes
