"""Concurrency and consumer-integration tests for the artifact store.

Same playbook as the broker race tests: hypothesis drives the
interleavings, real threads/processes race on one store directory, and
the invariants under test are the CAS ones — any interleaving of
same-digest publishers yields exactly one canonical object, and a
corrupted object is rejected, quarantined, and recomputed rather than
served.
"""

import json
import multiprocessing
import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CheckpointError
from repro.experiments.broker import Broker, task_key
from repro.sim.checkpoint import CheckpointManager
from repro.store import LocalStore, TieredStore, object_digest
from repro.store.__main__ import main as store_main
from repro.tuning.pipeline import PipelineCache


def _square(x):
    return x * x


class _StubSim:
    def __init__(self, state):
        self._state = dict(state)

    def snapshot_state(self):
        return dict(self._state)


def _put_worker(root, payload, barrier):
    barrier.wait(timeout=30)
    LocalStore(root).put(payload)


# -- concurrent publishers --------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_interleaved_same_digest_publishers_one_object(
    data, tmp_path_factory
):
    """Any thread interleaving of same-digest pushes leaves exactly one
    canonical, verified object and no torn temp files."""
    root = tmp_path_factory.mktemp("cas-race")
    payload = data.draw(st.binary(min_size=1, max_size=512))
    writers = data.draw(st.integers(min_value=2, max_value=6))
    store = LocalStore(root)
    barrier = threading.Barrier(writers)
    digests = []
    errors = []

    def push():
        try:
            barrier.wait(timeout=30)
            digests.append(store.put(payload))
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=push) for _ in range(writers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors
    expected = object_digest(payload)
    assert digests == [expected] * writers
    assert store.objects() == [expected]
    assert store.get(expected) == payload
    assert not list((root / "objects").rglob("*.tmp"))


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_interleaved_mixed_publishers_all_canonical(data, tmp_path_factory):
    """Racing publishers of overlapping payload sets converge on one
    object per distinct payload, each verified."""
    root = tmp_path_factory.mktemp("cas-mixed")
    payloads = data.draw(
        st.lists(st.binary(min_size=1, max_size=64), min_size=2,
                 max_size=8)
    )
    store = LocalStore(root)
    barrier = threading.Barrier(len(payloads))

    def push(blob):
        barrier.wait(timeout=30)
        store.put(blob)

    threads = [
        threading.Thread(target=push, args=(blob,)) for blob in payloads
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    expected = sorted({object_digest(blob) for blob in payloads})
    assert store.objects() == expected
    for blob in payloads:
        assert store.get(object_digest(blob)) == blob


def test_two_processes_pushing_same_digest(tmp_path):
    """Two real processes racing on one store directory publish one
    canonical object (temp names are pid-qualified, replace is atomic)."""
    ctx = multiprocessing.get_context("fork")
    payload = b"pushed from two processes at once"
    barrier = ctx.Barrier(2)
    procs = [
        ctx.Process(target=_put_worker, args=(str(tmp_path), payload,
                                              barrier))
        for _ in range(2)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=30)
    assert all(proc.exitcode == 0 for proc in procs)
    store = LocalStore(tmp_path)
    assert store.objects() == [object_digest(payload)]
    assert store.get(object_digest(payload)) == payload
    assert not list((tmp_path / "objects").rglob("*.tmp"))


def test_gc_sweeps_crashed_writer_temp_files(tmp_path):
    store = LocalStore(tmp_path)
    digest = store.put(b"survivor")
    store.set_ref("pipeline/live", digest)
    shard = tmp_path / "objects" / "ab"
    shard.mkdir(parents=True, exist_ok=True)
    (shard / f"{'ab' * 32}.12345.67890.tmp").write_bytes(b"torn write")
    store.gc()
    assert not list((tmp_path / "objects").rglob("*.tmp"))
    assert store.get(digest) == b"survivor"


# -- corrupted remote entry: rejected, quarantined, recomputed --------------


def test_corrupt_remote_pipeline_entry_recomputed(tmp_path, monkeypatch):
    shared = tmp_path / "shared"
    warm = PipelineCache(disk_dir=shared)
    calls = []
    warm.get_or_build(("typing", "prog"), lambda: calls.append(1) or 41)

    # Flip bits in the shared object behind the published ref.
    shared_store = LocalStore(shared)
    (name, digest), = shared_store.refs("pipeline").items()
    shared_store._object_path(digest).write_bytes(b"flipped bits")

    monkeypatch.setenv("REPRO_STORE_URL", str(shared))
    cold = PipelineCache(disk_dir=tmp_path / "local")
    value = cold.get_or_build(
        ("typing", "prog"), lambda: calls.append(2) or 41
    )
    # The damaged entry was rejected and recomputed, not served.
    assert value == 41
    assert calls == [1, 2]
    assert cold.misses == 1 and cold.store_hits == 0
    assert cold.corruptions == 1
    # ...and quarantined on the remote, so the evidence survives.
    assert list((shared / "quarantine").iterdir())


def test_forged_remote_entry_rejected_without_quarantine(
    tmp_path, monkeypatch
):
    """An object that verifies (bytes match digest) but decodes to the
    wrong key is a forgery, not corruption: dropped, recomputed."""
    import pickle

    from repro.tuning.pipeline import _key_digest

    shared = tmp_path / "shared"
    shared_store = LocalStore(shared)
    key = ("typing", "prog")
    blob = pickle.dumps(
        (("forged",), 99, _key_digest(key)),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    digest = shared_store.put(blob)
    shared_store.set_ref(f"pipeline/{key[0]}-{_key_digest(key)}", digest)

    monkeypatch.setenv("REPRO_STORE_URL", str(shared))
    cold = PipelineCache(disk_dir=tmp_path / "local")
    assert cold.get_or_build(key, lambda: 41) == 41
    assert cold.misses == 1
    assert cold.corruptions == 1


# -- broker results through the store ---------------------------------------


def test_broker_results_replay_from_store_on_second_host(
    tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    broker = Broker(tmp_path / "broker", fsync=False)
    sweep = broker.enqueue(_square, [2, 3], labels=["two", "three"])
    while True:
        lease = broker.claim(worker="host-a")
        if lease is None:
            break
        fn, task = lease.load()
        broker.complete(lease, fn(task))

    # "Second host": the queue database travels (rsync/shared fs) but
    # the digest-named result files do not.
    for entry in broker.results_dir.iterdir():
        entry.unlink()
    assert broker.replay(sweep) == {0: 4, 1: 9}
    # The fetched payloads were promoted back next to the queue, so a
    # third replay needs no store at all.
    monkeypatch.delenv("REPRO_STORE_DIR")
    assert broker.replay(sweep) == {0: 4, 1: 9}
    broker.close()


def test_broker_replay_without_store_still_misses(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
    monkeypatch.delenv("REPRO_STORE_URL", raising=False)
    broker = Broker(tmp_path / "broker", fsync=False)
    sweep = broker.enqueue(_square, [5])
    lease = broker.claim(worker="host-a")
    broker.complete(lease, 25)
    for entry in broker.results_dir.iterdir():
        entry.unlink()
    # No store configured: the missing file is simply absent (the task
    # re-runs), exactly the pre-store behavior.
    assert broker.replay(sweep) == {}
    broker.close()


def test_gc_checkpoints_removes_only_done_keys(tmp_path):
    broker = Broker(tmp_path / "broker", fsync=False)
    sweep = broker.enqueue(_square, [2, 3])
    done_key = task_key(_square, 2)
    pending_key = task_key(_square, 3)

    for key in (done_key, pending_key, "not-in-the-queue"):
        ckpt = broker.directory / "ckpt" / key / "baseline"
        ckpt.mkdir(parents=True)
        (ckpt / "ckpt-00000000.ckpt").write_bytes(b"x" * 64)

    lease = broker.claim(worker="w")
    assert lease.key == done_key
    broker.complete(lease, 4)

    removed, freed = broker.gc_checkpoints()
    assert (removed, freed) == (1, 64)
    assert not (broker.directory / "ckpt" / done_key).exists()
    # Pending and foreign directories are untouched.
    assert (broker.directory / "ckpt" / pending_key).is_dir()
    assert (broker.directory / "ckpt" / "not-in-the-queue").is_dir()
    assert any(row[1] == "gc" for row in broker.events())
    # Idempotent: nothing left to collect.
    assert broker.gc_checkpoints() == (0, 0)
    assert sweep  # silence unused warning-style lints
    broker.close()


# -- checkpoints through the store ------------------------------------------


def test_checkpoint_resumes_from_store_on_fresh_host(tmp_path):
    shared = tmp_path / "shared"
    state = {"now": 12.5, "phase": "tuned"}

    first = CheckpointManager(
        tmp_path / "host-a", interval=5.0,
        store=TieredStore(local=LocalStore(shared)), ref="ckpt/task/base",
    )
    first.save(_StubSim(state))

    # A fresh host with an empty checkpoint directory but the same
    # shared store resumes mid-simulation.
    second = CheckpointManager(
        tmp_path / "host-b", interval=5.0,
        store=TieredStore(local=LocalStore(shared)), ref="ckpt/task/base",
    )
    assert second.latest_state() == state
    assert second.resumed_from_store
    # The envelope was promoted into the local directory: the next
    # resume is store-free.
    assert len(second.checkpoint_files()) == 1
    third = CheckpointManager(tmp_path / "host-b", interval=5.0)
    assert third.latest_state() == state
    assert not third.resumed_from_store


def test_corrupt_store_checkpoint_falls_back_to_clean_start(tmp_path):
    shared = LocalStore(tmp_path / "shared")
    digest = shared.put(b"not a checkpoint envelope")
    shared.set_ref("ckpt/task/base", digest)
    mgr = CheckpointManager(
        tmp_path / "host", interval=5.0,
        store=TieredStore(local=shared), ref="ckpt/task/base",
    )
    assert mgr.latest_state() is None
    assert mgr.corrupt_skipped == 1
    assert not mgr.resumed_from_store


def test_checkpoint_without_ref_never_touches_store(tmp_path):
    class _Boom:
        def publish(self, *a, **k):
            raise AssertionError("store used without a ref")

        def fetch(self, *a, **k):
            raise AssertionError("store used without a ref")

    mgr = CheckpointManager(tmp_path, interval=5.0, store=_Boom(), ref=None)
    assert mgr.store is None
    mgr.save(_StubSim({"now": 1.0}))
    assert mgr.latest_state() == {"now": 1.0}


# -- CLI --------------------------------------------------------------------


def test_cli_push_pull_stats_gc_roundtrip(tmp_path, capsys):
    src = tmp_path / "src"
    dst = tmp_path / "dst"
    store = LocalStore(src)
    digest = store.put(b"artifact body")
    store.set_ref("pipeline/entry", digest)
    store.put(b"orphan")

    assert store_main(["push", "--dir", str(src), "--url", str(dst)]) == 0
    mirrored = LocalStore(dst)
    assert mirrored.get_ref("pipeline/entry") == digest
    assert mirrored.get(digest) == b"artifact body"
    # push copies referenced artifacts, not orphans.
    assert mirrored.objects() == [digest]

    pulled = tmp_path / "pulled"
    assert store_main(["pull", "--dir", str(pulled), "--url",
                       str(dst)]) == 0
    assert LocalStore(pulled).get(digest) == b"artifact body"

    capsys.readouterr()  # drain the push/pull progress lines
    assert store_main(["stats", "--dir", str(src)]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["tiers"][f"dir:{src}"]["objects"] == 2

    assert store_main(["gc", "--dir", str(src)]) == 0
    assert store.objects() == [digest]


def test_cli_gc_broker_dir(tmp_path, capsys):
    broker = Broker(tmp_path / "broker", fsync=False)
    broker.enqueue(_square, [7])
    key = task_key(_square, 7)
    ckpt = broker.directory / "ckpt" / key
    ckpt.mkdir(parents=True)
    (ckpt / "ckpt-00000000.ckpt").write_bytes(b"y" * 32)
    lease = broker.claim(worker="w")
    broker.complete(lease, 49)
    broker.close()

    assert store_main(["gc", "--broker-dir", str(tmp_path / "broker")]) == 0
    assert "1 done-task checkpoint" in capsys.readouterr().out
    assert not ckpt.exists()


def test_cli_gc_requires_a_target(capsys):
    with pytest.raises(SystemExit):
        store_main(["gc"])
