"""Store-side networking hardening: auth, readonly, and age/LRU
pruning (local, remote over ``POST /gc``, and the re-verify guarantee
for pruned-then-refetched objects)."""

import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import StoreError
from repro.store import HTTPStore, LocalStore, TieredStore, object_digest
from repro.store.server import make_server


def _serve(directory, **kwargs):
    server = make_server(directory, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, f"http://{host}:{port}"


def _backdate(store, name, age):
    path = store._ref_path(name)
    then = time.time() - age
    os.utime(path, (then, then))


# -- LocalStore.prune --------------------------------------------------------


def test_prune_by_age_drops_idle_refs_and_their_objects(tmp_path):
    store = LocalStore(tmp_path)
    old = store.put(b"old artifact")
    store.set_ref("sweep/old", old)
    new = store.put(b"new artifact")
    store.set_ref("sweep/new", new)
    _backdate(store, "sweep/old", 1000.0)

    dropped, removed, freed = store.prune(max_age=500.0)
    assert (dropped, removed) == (1, 1)
    assert freed == len(b"old artifact")
    assert store.get_ref("sweep/old") is None
    assert not store.has(old)
    # The fresh ref and its object are untouched.
    assert store.get(new) == b"new artifact"


def test_prune_by_bytes_evicts_least_recently_touched(tmp_path):
    store = LocalStore(tmp_path)
    payloads = {name: f"payload {name}".encode() * 10
                for name in ("a", "b", "c")}
    for age, name in ((300.0, "a"), (200.0, "b"), (100.0, "c")):
        store.set_ref(name, store.put(payloads[name]))
        _backdate(store, name, age)

    budget = len(payloads["b"]) + len(payloads["c"])
    dropped, removed, _freed = store.prune(max_bytes=budget)
    assert (dropped, removed) == (1, 1)  # only "a", the coldest
    assert store.get_ref("a") is None
    assert sorted(store.refs()) == ["b", "c"]


def test_prune_counts_shared_object_bytes_once(tmp_path):
    """Two refs to one digest: the object's bytes count once against
    the budget, and the object survives while either ref does."""
    store = LocalStore(tmp_path)
    digest = store.put(b"shared bytes")
    store.set_ref("first", digest)
    store.set_ref("second", digest)
    _backdate(store, "first", 500.0)

    dropped, removed, freed = store.prune(max_bytes=0)
    # Both refs must go before the object's bytes can be freed; the
    # budget of zero evicts both, and the object exactly once.
    assert (dropped, removed) == (2, 1)
    assert freed == len(b"shared bytes")


def test_prune_noop_within_budget(tmp_path):
    store = LocalStore(tmp_path)
    store.set_ref("keep", store.put(b"tiny"))
    assert store.prune(max_age=3600.0, max_bytes=10_000) == (0, 0, 0)
    assert store.get(store.get_ref("keep")) == b"tiny"


def test_pruned_object_is_reverified_on_refetch(tmp_path):
    """A pruned object is not special afterwards: re-fetching it from a
    remote tier runs the same digest check as any cold read, so a
    remote that has since rotted cannot slip bad bytes into the cache
    the prune emptied."""
    shared_dir = tmp_path / "shared"
    server, url = _serve(shared_dir)
    try:
        shared = LocalStore(shared_dir)
        local = LocalStore(tmp_path / "local")
        tiered = TieredStore(local=local,
                             remotes=[HTTPStore(url, cooldown=0.2)])
        digest = shared.put(b"durable artifact")
        shared.set_ref("exp/art", digest)

        assert tiered.fetch("exp/art") == b"durable artifact"
        assert local.has(digest)  # promoted into the pruned-to-be tier

        local.prune(max_age=0.0, now=time.time() + 100.0)
        assert not local.has(digest)

        # Rot the remote copy; the read-through refetch must verify
        # and refuse it rather than repopulate the cache with junk.
        path = shared._object_path(digest)
        path.write_bytes(b"rotten artifact!")
        fresh = TieredStore(local=local,
                            remotes=[HTTPStore(url, cooldown=0.2)])
        assert fresh.get_object(digest) is None
        assert not local.has(digest)

        # Heal the remote; the next cold read verifies and lands.
        path.write_bytes(b"durable artifact")
        healed = TieredStore(local=local,
                             remotes=[HTTPStore(url, cooldown=0.2)])
        assert healed.get_object(digest) == b"durable artifact"
        assert local.get(digest) == b"durable artifact"
    finally:
        server.shutdown()
        server.server_close()


# -- remote prune over POST /gc ---------------------------------------------


def test_http_prune_runs_remote_gc(tmp_path):
    directory = tmp_path / "served"
    server, url = _serve(directory)
    try:
        backing = LocalStore(directory)
        digest = backing.put(b"remote payload")
        backing.set_ref("cold/ref", digest)
        _backdate(backing, "cold/ref", 900.0)
        backing.set_ref("warm/ref", backing.put(b"warm payload"))

        remote = HTTPStore(url, cooldown=0.2)
        out = remote.prune(max_age=400.0)
        assert out == {
            "refs_dropped": 1,
            "objects_removed": 1,
            "bytes_freed": len(b"remote payload"),
        }
        assert not backing.has(digest)
        assert backing.get_ref("warm/ref") is not None
    finally:
        server.shutdown()
        server.server_close()


def test_http_prune_dead_tier_returns_none(tmp_path):
    server, url = _serve(tmp_path / "served")
    remote = HTTPStore(url, timeout=0.5, cooldown=30.0)
    server.shutdown()
    server.server_close()
    assert remote.prune(max_age=1.0) is None
    assert remote.tripped  # breaker open: next prune is instant
    assert remote.prune(max_age=1.0) is None


def test_gc_endpoint_rejects_malformed_body(tmp_path):
    server, url = _serve(tmp_path / "served")
    try:
        req = urllib.request.Request(
            url + "/gc", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=5.0)
        assert err.value.code == 400
    finally:
        server.shutdown()
        server.server_close()


# -- auth and readonly -------------------------------------------------------


def test_store_server_auth_rejects_unauthenticated_writes(tmp_path):
    server, url = _serve(tmp_path / "served", token="hunter2")
    try:
        digest = object_digest(b"secret artifact")
        req = urllib.request.Request(
            f"{url}/obj/{digest}", data=b"secret artifact", method="PUT"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=5.0)
        assert err.value.code == 401

        # The HTTPStore client swallows the rejection into a miss...
        anon = HTTPStore(url, cooldown=0.2)
        assert anon.put(b"secret artifact") is None
        # ...but an authorized client lands the write.
        auth = HTTPStore(url, cooldown=0.2, token="hunter2")
        assert auth.put(b"secret artifact") == digest
        assert auth.get(digest) == b"secret artifact"
    finally:
        server.shutdown()
        server.server_close()


def test_store_server_readonly_allows_reads_rejects_writes(tmp_path):
    directory = tmp_path / "served"
    backing = LocalStore(directory)
    digest = backing.put(b"published")
    backing.set_ref("pub/one", digest)
    server, url = _serve(directory, readonly=True)
    try:
        remote = HTTPStore(url, cooldown=0.2)
        assert remote.get(digest) == b"published"
        assert remote.get_ref("pub/one") == digest
        req = urllib.request.Request(
            f"{url}/obj/{object_digest(b'new')}", data=b"new",
            method="PUT",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=5.0)
        assert err.value.code == 403
    finally:
        server.shutdown()
        server.server_close()


def test_http_prune_policy_refusal_raises_not_miss(tmp_path):
    """401/403 on /gc is a *policy* failure: surfaced as StoreError so
    an operator's prune never silently no-ops, unlike transport faults
    which degrade to None."""
    server, url = _serve(tmp_path / "served", token="hunter2")
    try:
        anon = HTTPStore(url, cooldown=0.2)
        with pytest.raises(StoreError, match="HTTP 401"):
            anon.prune(max_age=1.0)
        assert not anon.tripped  # policy failures do not trip the breaker
    finally:
        server.shutdown()
        server.server_close()


def test_auth_token_resolves_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_AUTH_TOKEN", "envtoken")
    server, url = _serve(tmp_path / "served")  # server reads the env too
    try:
        remote = HTTPStore(url, cooldown=0.2)  # client reads the env
        digest = remote.put(b"env authed")
        assert digest is not None
        monkeypatch.setenv("REPRO_AUTH_TOKEN", "wrong")
        stranger = HTTPStore(url, cooldown=0.2)
        assert stranger.put(b"should fail") is None
    finally:
        server.shutdown()
        server.server_close()
