"""Calibration: the analytic miss model vs the detailed LRU simulator.

DESIGN.md commits to this agreement: for the access patterns the
synthetic ISA can express (scalars and fixed-stride streams), the
analytic steady-state miss rates must match what the real
set-associative LRU cache measures.
"""

import pytest

from repro.isa import ProgramBuilder
from repro.isa.instructions import MemAccess
from repro.sim.cache import SetAssociativeCache
from repro.sim.core import CoreType
from repro.sim.memory import MemoryModel

#: A small core type so detailed simulation stays fast.
SMALL_CORE = CoreType("small", 2.0, l1_kb=16, l2_kb=256)


def _program_with_region(size):
    pb = ProgramBuilder("t")
    pb.region("R", size)
    with pb.proc("main") as b:
        b.ret()
    return pb.build()


def _measured_miss_rate(cache_bytes, region_bytes, stride, sweeps=3):
    """Steady-state miss rate of strided sweeps through a region."""
    cache = SetAssociativeCache(cache_bytes, associativity=8, line_size=64)
    addresses = list(range(0, region_bytes, stride))
    cache.access_stream(addresses)  # Warm-up sweep.
    cache.reset_stats()
    for _ in range(sweeps):
        stats_before = cache.stats.accesses
        cache.access_stream(addresses)
    return cache.stats.miss_rate


@pytest.mark.parametrize("stride", [4, 16, 64])
def test_streaming_miss_rate_matches_model(stride):
    """Region far beyond capacity: misses = stride/line per access."""
    region = 4 << 20
    measured = _measured_miss_rate(SMALL_CORE.l2_bytes, region, stride)
    model = MemoryModel()
    program = _program_with_region(region)
    predicted = model.miss_profile(
        MemAccess("R", stride), program, SMALL_CORE
    ).l2_misses
    assert measured == pytest.approx(predicted, abs=0.02)


@pytest.mark.parametrize("stride", [16, 64])
def test_resident_region_matches_model(stride):
    """Region within capacity: steady state has no misses."""
    region = 64 << 10  # Fits the 256 KiB L2.
    measured = _measured_miss_rate(SMALL_CORE.l2_bytes, region, stride)
    model = MemoryModel()
    program = _program_with_region(region)
    predicted = model.miss_profile(
        MemAccess("R", stride), program, SMALL_CORE
    ).l2_misses
    assert predicted == 0.0
    assert measured == pytest.approx(0.0, abs=0.01)


def test_l1_boundary_agreement():
    """A region that fits L2 but not L1 shows L1 misses and L2 hits."""
    region = 64 << 10
    l1 = SetAssociativeCache(SMALL_CORE.l1_bytes, 8, 64)
    addresses = list(range(0, region, 64))
    l1.access_stream(addresses)
    l1.reset_stats()
    l1.access_stream(addresses)
    model = MemoryModel()
    program = _program_with_region(region)
    profile = model.miss_profile(MemAccess("R", 64), program, SMALL_CORE)
    assert l1.stats.miss_rate == pytest.approx(profile.l1_misses, abs=0.02)
    assert profile.l2_misses == 0.0


def test_scalar_agreement():
    """A scalar slot stays resident in both worlds."""
    cache = SetAssociativeCache(SMALL_CORE.l1_bytes, 8, 64)
    cache.access(128)
    cache.reset_stats()
    for _ in range(100):
        cache.access(128)
    assert cache.stats.miss_rate == 0.0
    model = MemoryModel()
    program = _program_with_region(1 << 20)
    profile = model.miss_profile(MemAccess("R", 0), program, SMALL_CORE)
    assert profile.l1_misses == 0.0
