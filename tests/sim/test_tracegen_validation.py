"""Trace generator vs reference interpreter.

The simulator's traces are built from a static expected-frequency
analysis.  For deterministic programs (counted loops, no data-dependent
branches) that analysis must be *exact*: the trace's instruction total
equals the interpreter's retired-instruction count, and per-loop
iteration counts match dynamic block counts.
"""

import pytest

from repro.isa import ProgramBuilder, assemble
from repro.isa.interpreter import run_program
from repro.sim import BehaviorSpec, TraceGenerator, core2quad_amp


@pytest.fixture()
def generator(machine):
    return TraceGenerator(machine)


def _counted_loops_program():
    source = """
    .region BIG 1048576
    .proc main
        movi r1, 0
    outer:
        movi r2, 0
    inner_a:
    """ + "    fmul f1, f1, f2\n" * 10 + """
        add r2, r2, 1
        cmp r2, 30
        br lt, inner_a
        movi r3, 0
    inner_b:
    """ + "    load r4, BIG[r3]:8\n    add r5, r5, r4\n" * 5 + """
        add r3, r3, 1
        cmp r3, 20
        br lt, inner_b
        add r1, r1, 1
        cmp r1, 8
        br lt, outer
        ret
    .endproc
    """
    spec = BehaviorSpec(
        trip_counts={
            ("main", "outer"): 8,
            ("main", "inner_a"): 30,
            ("main", "inner_b"): 20,
        }
    )
    return assemble(source), spec


def test_instruction_totals_exact(generator):
    program, spec = _counted_loops_program()
    trace = generator.generate(program, spec)
    state = run_program(program)
    assert trace.total_instrs() == pytest.approx(state.steps, rel=1e-6)


def test_loop_iteration_counts_exact(generator):
    program, spec = _counted_loops_program()
    trace = generator.generate(program, spec)
    state = run_program(program)
    inner_a_start = program["main"].labels["inner_a"]
    inner_b_start = program["main"].labels["inner_b"]
    dynamic_a = state.block_counts[("main", inner_a_start)]
    dynamic_b = state.block_counts[("main", inner_b_start)]
    assert dynamic_a == 8 * 30
    assert dynamic_b == 8 * 20
    # The trace's per-segment iterations reproduce these totals.
    totals = {}
    def walk(nodes, multiplier):
        for node in nodes:
            if hasattr(node, "children"):
                walk(node.children, multiplier * node.count)
            else:
                totals[node.uid] = (
                    totals.get(node.uid, 0.0) + multiplier * node.iterations
                )
    walk(trace.nodes, 1.0)
    loop_totals = {
        uid: total for uid, total in totals.items() if "@loop" in uid
    }
    assert pytest.approx(dynamic_a) in loop_totals.values()
    assert pytest.approx(dynamic_b) in loop_totals.values()


def test_calls_counted_exactly(generator):
    source = """
    .proc main
        movi r1, 0
    loop:
        call work
        add r1, r1, 1
        cmp r1, 12
        br lt, loop
        ret
    .endproc
    .proc work
        movi r2, 0
    w:
    """ + "    add r3, r3, 1\n" * 8 + """
        add r2, r2, 1
        cmp r2, 15
        br lt, w
        ret
    .endproc
    """
    program = assemble(source)
    spec = BehaviorSpec(
        trip_counts={("main", "loop"): 12, ("work", "w"): 15}
    )
    generator_machine = TraceGenerator(core2quad_amp())
    trace = generator_machine.generate(program, spec)
    state = run_program(program)
    assert trace.total_instrs() == pytest.approx(state.steps, rel=1e-6)


def test_diamond_expectation_brackets_dynamic(generator):
    """Data-dependent diamonds are modelled as 50/50: the expected
    instruction total must bracket the dynamic one within the diamond's
    contribution."""
    source = """
    .proc main
        movi r1, 0
    loop:
        cmp r1, 6
        br ge, b
        add r2, r2, 1
        add r2, r2, 1
        add r2, r2, 1
        jmp j
    b:
        xor r3, r3, r1
    j:
        add r1, r1, 1
        cmp r1, 12
        br lt, loop
        ret
    .endproc
    """
    program = assemble(source)
    spec = BehaviorSpec(trip_counts={("main", "loop"): 12})
    trace = generator.generate(program, spec)
    state = run_program(program)
    # Expected assumes 6 iterations per side; the run does exactly that
    # (r1 < 6 for the first six), so totals agree here.
    assert trace.total_instrs() == pytest.approx(state.steps, rel=0.02)


def test_benchmark_scale_consistency(generator):
    """A miniature SPEC-like benchmark: static totals track dynamics."""
    from repro.workloads.synthetic import (
        PhaseSpec,
        build_benchmark,
        cache_kernel,
        compute_kernel,
    )

    bench = build_benchmark(
        "mini",
        [
            PhaseSpec("a", compute_kernel(4, 2), 40),
            PhaseSpec("b", cache_kernel(2, 2, 2), 25),
        ],
        outer_trips=6,
        cold_procs=2,
    )
    trace = generator.generate(bench.program, bench.spec)
    state = run_program(bench.program)
    # The branch diamond inside each kernel body makes the expected
    # totals approximate; they must agree within the diamond share.
    assert trace.total_instrs() == pytest.approx(state.steps, rel=0.10)
