"""Unit tests for the discrete-event executor."""

import pytest

from repro.instrument import LoopStrategy, instrument
from repro.sim import (
    BehaviorSpec,
    Simulation,
    SimProcess,
    TraceGenerator,
    core2quad_amp,
)
from repro.sim.cost_model import CostVector
from repro.sim.executor import MarkAction
from repro.sim.process import EmbeddedMark, MarkRef, Segment, Trace
from tests.conftest import make_phased_program


def _simple_segment(machine, cycles=1e7, instrs=5e6, iters=1.0, **kw):
    vector = CostVector.zero(machine.core_types())
    vector.instrs = instrs
    for name in vector.compute:
        vector.compute[name] = cycles
    return Segment("seg", kw.pop("phase_type", None), iters, vector, **kw)


def _proc(machine, pid=1, segments=None, affinity=None):
    trace = Trace(tuple(segments or (_simple_segment(machine),)))
    return SimProcess(
        pid, f"p{pid}", trace, affinity or machine.all_cores_mask,
        isolated_time=1.0,
    )


def test_single_process_completes(machine):
    sim = Simulation(machine)
    proc = _proc(machine)
    sim.add_process(proc, 0.0)
    result = sim.run(100.0)
    assert result.completed == [proc]
    assert proc.completion > 0
    assert proc.stats.instructions == pytest.approx(5e6)


def test_wall_time_matches_frequency(machine):
    """1e7 compute cycles on a lone process lands on a 2.4 GHz core."""
    sim = Simulation(machine)
    proc = _proc(machine)
    sim.add_process(proc, 0.0)
    sim.run(100.0)
    assert proc.completion == pytest.approx(1e7 / 2.4e9, rel=0.01)


def test_affinity_restricts_placement(machine):
    sim = Simulation(machine)
    proc = _proc(machine, affinity=frozenset({2, 3}))
    sim.add_process(proc, 0.0)
    sim.run(100.0)
    # All cycles were spent on slow cores.
    assert set(proc.stats.cycles_by_type) == {"slow"}


def test_parallelism_across_cores(machine):
    sim = Simulation(machine)
    procs = [_proc(machine, pid=i) for i in range(4)]
    for p in procs:
        sim.add_process(p, 0.0)
    result = sim.run(100.0)
    assert len(result.completed) == 4
    # Four jobs, four cores: the two fast finish together, slow later,
    # but all well before 2x the slow solo time.
    slowest = max(p.completion for p in procs)
    assert slowest <= 2 * (1e7 / 1.6e9)


def test_timesharing_two_jobs_one_core(machine):
    sim = Simulation(machine)
    a = _proc(machine, pid=1, affinity=frozenset({0}))
    b = _proc(machine, pid=2, affinity=frozenset({0}))
    sim.add_process(a, 0.0)
    sim.add_process(b, 0.0)
    sim.run(100.0)
    solo = 1e7 / 2.4e9
    assert max(a.completion, b.completion) == pytest.approx(2 * solo, rel=0.1)


def test_work_conservation(machine):
    """Instructions committed equals the sum over processes."""
    sim = Simulation(machine)
    procs = [_proc(machine, pid=i) for i in range(6)]
    for p in procs:
        sim.add_process(p, 0.0)
    result = sim.run(100.0)
    total = sum(p.stats.instructions for p in procs)
    committed = sum(result.throughput_buckets.values())
    assert committed == pytest.approx(total)


def test_mark_triggers_runtime(machine):
    calls = []

    class Recorder:
        def on_mark(self, proc, mark_id, phase_type, core, now):
            calls.append((mark_id, phase_type))
            return MarkAction()

        def on_process_end(self, proc, now):
            calls.append(("end", proc.pid))

        def assignment_for(self, proc, phase_type):
            return None

    seg = _simple_segment(
        machine, entry_marks=(MarkRef(7, 1),), phase_type=1
    )
    sim = Simulation(machine, runtime=Recorder())
    sim.add_process(_proc(machine, segments=[seg]), 0.0)
    sim.run(100.0)
    assert (7, 1) in calls
    assert ("end", 1) in calls


def test_affinity_change_migrates_and_counts_switch(machine):
    class Mover:
        def on_mark(self, proc, mark_id, phase_type, core, now):
            return MarkAction(affinity=frozenset({3}))

        def on_process_end(self, proc, now):
            pass

        def assignment_for(self, proc, phase_type):
            return None

    seg = _simple_segment(machine, entry_marks=(MarkRef(0, 1),))
    proc = _proc(machine, segments=[seg])
    sim = Simulation(machine, runtime=Mover())
    sim.add_process(proc, 0.0)
    sim.run(100.0)
    assert proc.stats.migrations == 1
    assert proc.stats.switches == 1
    assert proc.affinity == frozenset({3})
    assert "slow" in proc.stats.cycles_by_type


def test_embedded_mark_overhead_charged(machine):
    plain = _simple_segment(machine, iters=1000.0, cycles=1e4, instrs=5e3)
    marked = _simple_segment(
        machine,
        iters=1000.0,
        cycles=1e4,
        instrs=5e3,
        embedded=(EmbeddedMark(0, 1, 2.0),),
    )
    sim_a = Simulation(machine)
    pa = _proc(machine, segments=[plain])
    sim_a.add_process(pa, 0.0)
    sim_a.run(100.0)
    sim_b = Simulation(machine)
    pb = _proc(machine, segments=[marked])
    sim_b.add_process(pb, 0.0)
    sim_b.run(100.0)
    assert pb.completion > pa.completion
    assert pb.stats.mark_overhead_cycles > 0


def test_on_complete_spawns_replacement(machine):
    spawned = []

    def on_complete(proc, now):
        if len(spawned) < 2:
            replacement = _proc(machine, pid=proc.pid + 10)
            spawned.append(replacement)
            return replacement
        return None

    sim = Simulation(machine, on_complete=on_complete)
    sim.add_process(_proc(machine, pid=1), 0.0)
    result = sim.run(100.0)
    assert len(result.completed) == 3  # Original plus two replacements.


def test_idle_time_accounted(machine):
    sim = Simulation(machine)
    sim.add_process(_proc(machine), 0.0)
    result = sim.run(10.0)
    # One short job: nearly all of every core's 10 s is idle.
    total_idle = sum(result.idle_time_by_core.values())
    assert total_idle > 39.0


def test_l2_contention_slows_memory_neighbors(machine):
    """Two streaming jobs pinned to one L2 pair run slower than one."""
    # Long enough that execution spans many quanta (contention is read
    # from the co-runner's previous quantum).
    program, spec = make_phased_program(
        compute_iters=1, memory_iters=200_000, outer=20
    )
    generator = TraceGenerator(machine)

    def run(n_jobs):
        sim = Simulation(machine, contention_alpha=1.0)
        procs = []
        for pid in range(n_jobs):
            trace = generator.generate(program, spec)
            proc = SimProcess(
                pid, "m", trace, frozenset({2, 3}), isolated_time=1.0
            )
            procs.append(proc)
            sim.add_process(proc, 0.0)
        sim.run(1000.0)
        return procs

    solo = run(1)[0]
    pair = run(2)
    slowest = max(p.completion for p in pair)
    # With a core each, completion would match solo absent contention.
    assert slowest > solo.completion * 1.1


def test_throughput_buckets_timeline(machine):
    sim = Simulation(machine)
    sim.add_process(_proc(machine), 0.0)
    result = sim.run(100.0)
    assert result.instructions_before(100.0) == pytest.approx(5e6)
    assert result.instructions_before(0.0) == 0.0


def test_end_to_end_phased_tuning_runs(machine):
    """Integration shake: instrumented phased program under the runtime."""
    from repro.tuning import PhaseTuningRuntime

    program, spec = make_phased_program(outer=6)
    inst = instrument(program, LoopStrategy(20))
    generator = TraceGenerator(machine)
    runtime = PhaseTuningRuntime(machine, 0.12)
    sim = Simulation(machine, runtime=runtime)
    proc = SimProcess(
        1, "phased", generator.generate(inst, spec),
        machine.all_cores_mask, isolated_time=1.0,
    )
    sim.add_process(proc, 0.0)
    result = sim.run(1000.0)
    assert result.completed
    assert proc.stats.mark_firings > 0
