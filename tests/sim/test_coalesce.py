"""Exact-equality tests for the macro-quantum coalescing layer.

``Simulation(coalesce=True)`` (the default) runs provably-stable
stretches of core turns through a mini event loop with cached
per-quantum commits; ``coalesce=False`` keeps the per-quantum outer
loop, and ``batched=False`` forces the stepped tree-walking reference.
All three must agree *exactly* — same floats, same switch counts, same
telemetry spans — because the coalesced loop replays the reference
event order and float arithmetic op for op.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import make_workload
from repro.instrument import LoopStrategy, instrument
from repro.instrument.marker import parse_strategy
from repro.sim import SimProcess, Simulation, TraceGenerator
from repro.sim.checkpoint import CheckpointManager
from repro.sim.executor import NO_BATCH_ENV, NO_COALESCE_ENV
from repro.sim.faults import DvfsEvent, FaultPlan, HotplugEvent
from repro.sim.scheduler.base import Scheduler
from repro.sim.scheduler.linux_o1 import LinuxO1Scheduler
from repro.telemetry.context import set_recorder
from repro.telemetry.recorder import TraceRecorder
from repro.tuning import PhaseTuningRuntime
from repro.tuning.pipeline import PipelineCache
from repro.workloads.workload import WorkloadRun
from tests.conftest import make_phased_program
from tests.sim.test_batched_executor import _summary


# -- the stability-horizon / fault-bound contracts -----------------------------


class _MinimalScheduler(Scheduler):
    def enqueue(self, proc, now):
        raise NotImplementedError

    def pick(self, core_id, now):
        raise NotImplementedError

    def requeue(self, proc, core_id, now):
        raise NotImplementedError

    def queue_length(self, core_id):
        return 0


def test_base_scheduler_gives_no_horizon():
    """A scheduler that does not opt in reports ``now`` — "no
    guarantee" — which keeps coalescing off for it."""
    sched = _MinimalScheduler()
    assert sched.stability_horizon(0, 12.5) == 12.5


def test_linux_o1_horizon_is_balance_due(machine):
    sched = LinuxO1Scheduler(balance_interval=0.2)
    sched.attach(machine, lambda cid, now: None)
    assert sched.stability_horizon(0, 0.05) == 0.2
    sched._last_balance = 1.0
    assert sched.stability_horizon(0, 1.1) == pytest.approx(1.2)


def test_linux_o1_horizon_refuses_offline_core(machine):
    sched = LinuxO1Scheduler()
    sched.attach(machine, lambda cid, now: None)
    sched.set_core_offline(1, True, 0.0)
    assert sched.stability_horizon(1, 5.0) == 5.0


def test_null_plan_has_no_fault_bound():
    assert FaultPlan().next_event_after(0.0) == float("inf")


def test_next_event_after_is_strict_and_spans_kinds():
    plan = FaultPlan(
        hotplug=(HotplugEvent(time=3.0, core_id=1, online=False),),
        dvfs=(DvfsEvent(time=1.5, core_id=0, scale=0.8),),
    )
    assert plan.next_event_after(0.0) == 1.5
    # Strictly after: an event at exactly `now` no longer bounds.
    assert plan.next_event_after(1.5) == 3.0
    assert plan.next_event_after(3.0) == float("inf")


# -- three-way exact equality ---------------------------------------------------


def _run(machine, *, batched=True, coalesce=None, strategy=None, faults=None):
    # Iteration counts sized so each process runs for tens of simulated
    # seconds (hundreds of quanta): long mark-free stretches are what
    # actually open macro windows, and mid-run faults then land while
    # work is in flight.
    program, spec = make_phased_program(
        compute_iters=5_000_000, memory_iters=5_000_000, outer=30
    )
    generator = TraceGenerator(machine)
    if strategy is not None:
        source = instrument(program, strategy)
        runtime = PhaseTuningRuntime(machine, 0.12)
    else:
        source = program
        runtime = None
    sim = Simulation(
        machine,
        runtime=runtime,
        faults=faults,
        batched=batched,
        coalesce=coalesce,
    )
    for pid in range(5):
        proc = SimProcess(
            pid,
            f"p{pid}",
            generator.generate(source, spec),
            machine.all_cores_mask,
            isolated_time=1.0,
        )
        sim.add_process(proc, 0.0)
    return _summary(sim.run(60.0))


def test_coalesced_matches_per_quantum_and_stepped(machine):
    coalesced = _run(machine, coalesce=True)
    assert coalesced == _run(machine, coalesce=False)
    assert coalesced == _run(machine, batched=False, coalesce=False)


def test_coalesced_matches_under_runtime(machine):
    strategy = LoopStrategy(20)
    coalesced = _run(machine, coalesce=True, strategy=strategy)
    assert coalesced == _run(machine, coalesce=False, strategy=strategy)


def test_coalesced_matches_with_faults(machine):
    """A nonzero plan (hotplug + DVFS mid-run) forces windows to close
    on the fault bound; results must still match exactly."""
    span = _run(machine, coalesce=False)["time"]
    plan = FaultPlan(
        seed=5,
        hotplug=(
            HotplugEvent(time=span * 0.3, core_id=1, online=False),
            HotplugEvent(time=span * 0.6, core_id=1, online=True),
        ),
        dvfs=(DvfsEvent(time=span * 0.5, core_id=0, scale=0.8),),
    )
    faulted = _run(machine, coalesce=True, faults=plan)
    assert faulted == _run(machine, coalesce=False, faults=plan)
    assert faulted != _run(machine, coalesce=True)  # the plan really bit


# -- telemetry spans ------------------------------------------------------------


def test_quantum_spans_identical_under_tracing(machine):
    """With the high-volume ``quantum`` category on, the coalesced run
    emits the same span events (same times, cores, durations, pids) in
    the same order as the per-quantum loop."""

    def traced(coalesce):
        recorder = TraceRecorder(categories={"exec", "sched", "quantum"})
        previous = set_recorder(recorder)
        try:
            summary = _run(machine, coalesce=coalesce)
        finally:
            set_recorder(previous)
        # Scrub the recorder-assigned run id (field 3): it is an
        # allocation counter, not simulation output.
        events = [e[:3] + e[4:] for e in recorder.events]
        return summary, events

    c_summary, c_events = traced(True)
    s_summary, s_events = traced(False)
    assert c_summary == s_summary
    assert c_events == s_events
    assert any(e[1] == "quantum" for e in c_events)


# -- environment kill-switches --------------------------------------------------


def test_no_coalesce_env_disables_default(machine, monkeypatch):
    monkeypatch.setenv(NO_COALESCE_ENV, "1")
    assert Simulation(machine).coalesce is False
    # An explicit argument beats the environment.
    assert Simulation(machine, coalesce=True).coalesce is True
    monkeypatch.delenv(NO_COALESCE_ENV)
    assert Simulation(machine).coalesce is True


def test_no_batch_env_forces_stepped_path(machine, monkeypatch):
    monkeypatch.setenv(NO_BATCH_ENV, "1")
    sim = Simulation(machine)
    assert sim.batched is False
    assert sim._coalescing is False  # coalescing rides on batching
    assert Simulation(machine, batched=True).batched is True


def test_custom_scheduler_disables_coalescing(machine):
    class Subclassed(LinuxO1Scheduler):
        pass

    sim = Simulation(machine, scheduler=Subclassed())
    assert sim.coalesce is True and sim._coalescing is False


# -- checkpoint/resume mid-window ----------------------------------------------


def _workload_summary(result):
    return _summary(result)


def _tuned_run(config, cache, coalesce, checkpoint=None, until=None):
    run = WorkloadRun(
        make_workload(config),
        config.resolved_machine(),
        parse_strategy("Loop[45]"),
        cache=cache,
    )
    return run.run(
        until if until is not None else config.interval,
        runtime=config.make_runtime(None),
        checkpoint=checkpoint,
        coalesce=coalesce,
    )


def test_kill_resume_mid_window_matches_stepped(tmp_path):
    """Snapshots cut windows at the checkpoint grid; a coalesced run
    killed and resumed from such a snapshot still reproduces the
    per-quantum run bit for bit."""
    config = ExperimentConfig(slots=4, interval=20.0, seed=11)
    cache = PipelineCache()
    reference = _workload_summary(_tuned_run(config, cache, coalesce=False))

    ckpt_dir = tmp_path / "ck"
    partial = CheckpointManager(ckpt_dir, interval=3.0)
    _tuned_run(config, cache, coalesce=True, checkpoint=partial, until=8.0)
    assert partial.saves > 0

    resumed_mgr = CheckpointManager(ckpt_dir, interval=3.0)
    resumed = _workload_summary(
        _tuned_run(config, cache, coalesce=True, checkpoint=resumed_mgr)
    )
    assert resumed == reference
