"""Unit tests for the PAPI-like counter bank."""

import pytest

from repro.errors import CounterError
from repro.sim.counters import CounterBank


def test_acquire_and_release():
    bank = CounterBank(n_cores=2, slots_per_core=1)
    session = bank.try_acquire(0, pid=1, instrs=100.0, cycles=200.0)
    assert session is not None
    assert session.start_instrs == 100.0
    assert session.start_cycles == 200.0
    bank.release(session)
    assert bank.try_acquire(0, pid=2, instrs=0, cycles=0) is not None


def test_slots_are_bounded():
    bank = CounterBank(n_cores=1, slots_per_core=2)
    first = bank.try_acquire(0, 1, 0, 0)
    second = bank.try_acquire(0, 2, 0, 0)
    assert first and second
    third = bank.try_acquire(0, 3, 0, 0)
    assert third is None
    assert bank.rejections == 1


def test_slots_are_per_core():
    bank = CounterBank(n_cores=2, slots_per_core=1)
    assert bank.try_acquire(0, 1, 0, 0)
    assert bank.try_acquire(1, 2, 0, 0)  # Other core unaffected.


def test_double_release_rejected():
    bank = CounterBank(n_cores=1)
    session = bank.try_acquire(0, 1, 0, 0)
    bank.release(session)
    with pytest.raises(CounterError, match="already released"):
        bank.release(session)


def test_bad_core_id_rejected():
    bank = CounterBank(n_cores=2)
    with pytest.raises(CounterError, match="out of range"):
        bank.try_acquire(5, 1, 0, 0)


def test_rejection_rate():
    bank = CounterBank(n_cores=1, slots_per_core=1)
    assert bank.rejection_rate == 0.0
    bank.try_acquire(0, 1, 0, 0)
    bank.try_acquire(0, 2, 0, 0)  # Rejected.
    assert bank.rejection_rate == pytest.approx(0.5)


def test_wait_episode_counted_once_per_deferral():
    """Three retries that finally succeed are one wait episode, not three."""
    bank = CounterBank(n_cores=1, slots_per_core=1)
    held = bank.try_acquire(0, pid=1, instrs=0, cycles=0)
    for _ in range(3):  # deferred retries while pid 1 hogs the slot
        assert bank.try_acquire(0, pid=2, instrs=0, cycles=0) is None
    assert bank.rejections == 3
    assert bank.wait_episodes == 1
    bank.release(held)
    assert bank.try_acquire(0, pid=2, instrs=0, cycles=0) is not None
    assert bank.waited_grants == 1
    # One direct grant (pid 1) + one waited episode (pid 2).
    assert bank.wait_rate == pytest.approx(0.5)


def test_concurrent_waiters_each_open_an_episode():
    bank = CounterBank(n_cores=1, slots_per_core=1)
    bank.try_acquire(0, pid=1, instrs=0, cycles=0)
    bank.try_acquire(0, pid=2, instrs=0, cycles=0)
    bank.try_acquire(0, pid=3, instrs=0, cycles=0)
    bank.try_acquire(0, pid=2, instrs=0, cycles=0)  # retry, same episode
    assert bank.rejections == 3
    assert bank.wait_episodes == 2


def test_grant_closes_episode_so_next_wait_is_new():
    bank = CounterBank(n_cores=1, slots_per_core=1)
    held = bank.try_acquire(0, pid=1, instrs=0, cycles=0)
    bank.try_acquire(0, pid=2, instrs=0, cycles=0)
    bank.release(held)
    waited = bank.try_acquire(0, pid=2, instrs=0, cycles=0)
    assert waited is not None
    # A later refusal of the same pid opens a *new* episode.
    bank.try_acquire(0, pid=3, instrs=0, cycles=0)
    assert bank.try_acquire(0, pid=2, instrs=0, cycles=0) is None
    assert bank.wait_episodes == 3
    assert bank.waited_grants == 1


def test_wait_rate_zero_without_contention():
    bank = CounterBank(n_cores=2, slots_per_core=2)
    for pid in range(4):
        assert bank.try_acquire(pid % 2, pid, 0, 0) is not None
    assert bank.wait_rate == 0.0
    assert bank.wait_episodes == 0
