"""Unit tests for the PAPI-like counter bank."""

import pytest

from repro.errors import CounterError
from repro.sim.counters import CounterBank


def test_acquire_and_release():
    bank = CounterBank(n_cores=2, slots_per_core=1)
    session = bank.try_acquire(0, pid=1, instrs=100.0, cycles=200.0)
    assert session is not None
    assert session.start_instrs == 100.0
    assert session.start_cycles == 200.0
    bank.release(session)
    assert bank.try_acquire(0, pid=2, instrs=0, cycles=0) is not None


def test_slots_are_bounded():
    bank = CounterBank(n_cores=1, slots_per_core=2)
    first = bank.try_acquire(0, 1, 0, 0)
    second = bank.try_acquire(0, 2, 0, 0)
    assert first and second
    third = bank.try_acquire(0, 3, 0, 0)
    assert third is None
    assert bank.rejections == 1


def test_slots_are_per_core():
    bank = CounterBank(n_cores=2, slots_per_core=1)
    assert bank.try_acquire(0, 1, 0, 0)
    assert bank.try_acquire(1, 2, 0, 0)  # Other core unaffected.


def test_double_release_rejected():
    bank = CounterBank(n_cores=1)
    session = bank.try_acquire(0, 1, 0, 0)
    bank.release(session)
    with pytest.raises(CounterError, match="already released"):
        bank.release(session)


def test_bad_core_id_rejected():
    bank = CounterBank(n_cores=2)
    with pytest.raises(CounterError, match="out of range"):
        bank.try_acquire(5, 1, 0, 0)


def test_rejection_rate():
    bank = CounterBank(n_cores=1, slots_per_core=1)
    assert bank.rejection_rate == 0.0
    bank.try_acquire(0, 1, 0, 0)
    bank.try_acquire(0, 2, 0, 0)  # Rejected.
    assert bank.rejection_rate == pytest.approx(0.5)
