"""Checkpoint format, manager policy, and kill-resume bit-identity."""

import os
import random

import pytest

from repro.errors import CheckpointError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import make_workload
from repro.instrument.marker import parse_strategy
from repro.sim.checkpoint import (
    CHECKPOINT_INTERVAL_ENV,
    CheckpointManager,
    MAGIC,
    TASK_CHECKPOINT_DIR_ENV,
    load_checkpoint,
    save_checkpoint,
    task_checkpoint_manager,
)
from repro.sim.executor import Simulation
from repro.sim.faults import FaultPlan
from repro.telemetry.context import set_recorder
from repro.telemetry.recorder import NULL_RECORDER, TraceRecorder
from repro.tuning.pipeline import PipelineCache
from repro.workloads.workload import WorkloadRun


# -- file format ----------------------------------------------------------------


def test_save_load_roundtrip(tmp_path):
    state = {"now": 12.5, "payload": list(range(100)), "nested": {"a": (1, 2)}}
    path = save_checkpoint(state, tmp_path / "x.ckpt")
    assert load_checkpoint(path) == state
    # No stray tmp file left behind.
    assert sorted(p.name for p in tmp_path.iterdir()) == ["x.ckpt"]


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "x.ckpt"
    path.write_bytes(b"NOTACKPT" + b"\x00" * 64)
    with pytest.raises(CheckpointError, match="magic"):
        load_checkpoint(path)


def test_missing_file_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(tmp_path / "absent.ckpt")


def test_non_dict_payload_rejected(tmp_path):
    path = save_checkpoint({"now": 0.0}, tmp_path / "x.ckpt")
    # Splice a non-dict pickle under a recomputed valid envelope.
    import hashlib
    import json
    import pickle

    payload = pickle.dumps([1, 2, 3])
    header = json.dumps(
        {
            "length": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "sim_time": 0.0,
            "version": 1,
        }
    ).encode("ascii")
    path.write_bytes(MAGIC + len(header).to_bytes(4, "big") + header + payload)
    with pytest.raises(CheckpointError, match="not a snapshot dict"):
        load_checkpoint(path)


def test_wrong_version_rejected(tmp_path):
    import hashlib
    import json
    import pickle

    payload = pickle.dumps({"now": 0.0})
    header = json.dumps(
        {
            "length": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "sim_time": 0.0,
            "version": 999,
        }
    ).encode("ascii")
    path = tmp_path / "x.ckpt"
    path.write_bytes(MAGIC + len(header).to_bytes(4, "big") + header + payload)
    with pytest.raises(CheckpointError, match="version"):
        load_checkpoint(path)


def test_every_truncation_rejected(tmp_path):
    """Property: a checkpoint cut at ANY byte boundary never loads."""
    path = save_checkpoint(
        {"now": 3.0, "blob": bytes(range(256)) * 8}, tmp_path / "x.ckpt"
    )
    raw = path.read_bytes()
    rng = random.Random(42)
    cuts = {0, 1, len(MAGIC), len(MAGIC) + 2, len(raw) - 1}
    cuts.update(rng.randrange(len(raw)) for _ in range(40))
    for cut in sorted(cuts):
        path.write_bytes(raw[:cut])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


def test_every_bit_flip_rejected_or_detected(tmp_path):
    """Property: flipping any single bit never yields a *different*
    accepted snapshot — it either still loads to the identical state
    (a don't-care byte, e.g. JSON whitespace) or raises."""
    state = {"now": 3.0, "blob": bytes(range(256)) * 4}
    path = save_checkpoint(state, tmp_path / "x.ckpt")
    raw = bytearray(path.read_bytes())
    rng = random.Random(7)
    offsets = {0, len(MAGIC) + 1, len(raw) - 1}
    offsets.update(rng.randrange(len(raw)) for _ in range(60))
    for offset in sorted(offsets):
        flipped = bytearray(raw)
        flipped[offset] ^= 1 << rng.randrange(8)
        path.write_bytes(bytes(flipped))
        try:
            loaded = load_checkpoint(path)
        except CheckpointError:
            continue
        assert loaded == state, f"bit flip at {offset} silently accepted"


# -- manager policy -------------------------------------------------------------


def test_interval_must_be_positive_finite(tmp_path):
    for bad in (0.0, -1.0, float("inf"), float("nan")):
        with pytest.raises(CheckpointError, match="interval"):
            CheckpointManager(tmp_path, interval=bad)


def test_keep_must_leave_a_fallback(tmp_path):
    with pytest.raises(CheckpointError, match="keep"):
        CheckpointManager(tmp_path, keep=1)


def test_due_times_sit_on_absolute_grid(tmp_path):
    mgr = CheckpointManager(tmp_path, interval=5.0)
    assert mgr.first_due(0.0) == 5.0
    assert mgr.first_due(4.99) == 5.0
    assert mgr.first_due(5.0) == 10.0
    assert mgr.first_due(12.3) == 15.0


class _FakeSim:
    def __init__(self, now):
        self._now = now

    def snapshot_state(self):
        return {"now": self._now}


def test_save_numbers_and_prunes(tmp_path):
    mgr = CheckpointManager(tmp_path, interval=1.0, keep=2)
    for k in range(5):
        mgr.save(_FakeSim(float(k)))
    names = [p.name for p in mgr.checkpoint_files()]
    assert names == ["ckpt-00000003.ckpt", "ckpt-00000004.ckpt"]
    assert mgr.saves == 5
    assert mgr.latest_state() == {"now": 4.0}


def test_sequence_continues_across_managers(tmp_path):
    first = CheckpointManager(tmp_path, interval=1.0)
    first.save(_FakeSim(1.0))
    second = CheckpointManager(tmp_path, interval=1.0)
    second.save(_FakeSim(2.0))
    names = [p.name for p in second.checkpoint_files()]
    assert names == ["ckpt-00000000.ckpt", "ckpt-00000001.ckpt"]


def test_corrupt_newest_falls_back_to_predecessor(tmp_path):
    mgr = CheckpointManager(tmp_path, interval=1.0)
    mgr.save(_FakeSim(1.0))
    mgr.save(_FakeSim(2.0))
    newest = mgr.checkpoint_files()[-1]
    raw = bytearray(newest.read_bytes())
    raw[-3] ^= 0xFF
    newest.write_bytes(bytes(raw))
    assert mgr.latest_state() == {"now": 1.0}
    assert mgr.corrupt_skipped == 1


def test_all_corrupt_falls_back_to_clean_start(tmp_path):
    mgr = CheckpointManager(tmp_path, interval=1.0)
    mgr.save(_FakeSim(1.0))
    mgr.save(_FakeSim(2.0))
    for path in mgr.checkpoint_files():
        path.write_bytes(b"garbage")
    assert mgr.latest_state() is None
    assert mgr.corrupt_skipped == 2


def test_empty_directory_is_clean_start(tmp_path):
    assert CheckpointManager(tmp_path / "nope").latest_state() is None


# -- task_checkpoint_manager ----------------------------------------------------


def test_task_manager_absent_without_env(monkeypatch):
    monkeypatch.delenv(TASK_CHECKPOINT_DIR_ENV, raising=False)
    assert task_checkpoint_manager() is None


def test_task_manager_reads_env(tmp_path, monkeypatch):
    monkeypatch.setenv(TASK_CHECKPOINT_DIR_ENV, str(tmp_path))
    monkeypatch.setenv(CHECKPOINT_INTERVAL_ENV, "2.5")
    mgr = task_checkpoint_manager()
    assert mgr.directory == tmp_path
    assert mgr.interval == 2.5
    sub = task_checkpoint_manager("tuned")
    assert sub.directory == tmp_path / "tuned"


def test_task_manager_rejects_bad_interval(tmp_path, monkeypatch):
    monkeypatch.setenv(TASK_CHECKPOINT_DIR_ENV, str(tmp_path))
    monkeypatch.setenv(CHECKPOINT_INTERVAL_ENV, "soon")
    with pytest.raises(CheckpointError, match="not a number"):
        task_checkpoint_manager()


# -- kill/resume bit-identity ---------------------------------------------------


def _config():
    return ExperimentConfig(slots=4, interval=20.0, seed=11)


def _summary(result):
    return {
        "time": result.time,
        "completed": [
            (
                p.pid,
                p.name,
                p.completion,
                p.stats.instructions,
                dict(p.stats.cycles_by_type),
                p.stats.switches,
                p.stats.migrations,
                p.stats.mark_firings,
                p.stats.cpu_time,
            )
            for p in result.completed
        ],
        "buckets": dict(result.throughput_buckets),
        "idle": dict(result.idle_time_by_core),
    }


def _tuned_run(config, cache, faults=None, checkpoint=None, until=None):
    workload = make_workload(config)
    run = WorkloadRun(
        workload,
        config.resolved_machine(),
        parse_strategy("Loop[45]"),
        cache=cache,
    )
    result = run.run(
        until if until is not None else config.interval,
        runtime=config.make_runtime(None),
        faults=faults,
        checkpoint=checkpoint,
    )
    return result


def test_checkpointing_enabled_matches_disabled(tmp_path):
    """snapshot_state is pure: saving checkpoints must not perturb the
    simulation (no RNG draws, no mutation)."""
    config = _config()
    cache = PipelineCache()
    plain = _summary(_tuned_run(config, cache))
    ckpt = CheckpointManager(tmp_path / "ck", interval=3.0)
    with_ckpt = _summary(_tuned_run(config, cache, checkpoint=ckpt))
    assert ckpt.saves > 0
    assert with_ckpt == plain


@pytest.mark.parametrize("faulted", [False, True])
def test_kill_resume_is_bit_identical(tmp_path, faulted):
    """A run killed mid-flight and resumed from its checkpoint produces
    exactly the results of an uninterrupted run."""
    config = _config()
    cache = PipelineCache()
    plan = None
    if faulted:
        plan = FaultPlan.scaled(
            0.4,
            config.resolved_machine(),
            config.interval,
            seed=3,
            mem_pressure_rate=0.2,
            clock_drift_rate=0.3,
        )
    reference = _summary(_tuned_run(config, cache, faults=plan))

    ckpt_dir = tmp_path / "ck"
    partial = CheckpointManager(ckpt_dir, interval=3.0)
    # "Kill": run only part of the interval, then discard all live
    # state — only the checkpoint directory survives.
    _tuned_run(config, cache, faults=plan, checkpoint=partial, until=8.0)
    assert partial.saves > 0

    resumed_mgr = CheckpointManager(ckpt_dir, interval=3.0)
    resumed = _summary(
        _tuned_run(config, cache, faults=plan, checkpoint=resumed_mgr)
    )
    assert resumed == reference


def test_kill_resume_after_corrupting_newest_checkpoint(tmp_path):
    """Corrupting the newest snapshot falls back to its predecessor —
    and the resumed run is still bit-identical."""
    config = _config()
    cache = PipelineCache()
    reference = _summary(_tuned_run(config, cache))

    ckpt_dir = tmp_path / "ck"
    partial = CheckpointManager(ckpt_dir, interval=2.0, keep=3)
    _tuned_run(config, cache, checkpoint=partial, until=9.0)
    files = partial.checkpoint_files()
    assert len(files) >= 2
    raw = bytearray(files[-1].read_bytes())
    raw[len(raw) // 2] ^= 0x40
    files[-1].write_bytes(bytes(raw))

    resumed_mgr = CheckpointManager(ckpt_dir, interval=2.0, keep=3)
    resumed = _summary(_tuned_run(config, cache, checkpoint=resumed_mgr))
    assert resumed_mgr.corrupt_skipped == 1
    assert resumed == reference


def test_kill_resume_trace_and_metrics_identical(tmp_path):
    """Under telemetry, the resumed run's trace events and metrics also
    match the uninterrupted run's."""
    config = _config()
    cache = PipelineCache()

    def traced(fn):
        rec = TraceRecorder(categories={"exec", "sched", "tuning"})
        previous = set_recorder(rec)
        try:
            summary = fn()
        finally:
            set_recorder(previous)
        return summary, rec

    clean_summary, clean_rec = traced(
        lambda: _summary(_tuned_run(config, PipelineCache()))
    )

    ckpt_dir = tmp_path / "ck"

    def interrupted():
        partial = CheckpointManager(ckpt_dir, interval=3.0)
        _tuned_run(config, cache, checkpoint=partial, until=8.0)

    traced(interrupted)

    def resumed():
        mgr = CheckpointManager(ckpt_dir, interval=3.0)
        return _summary(_tuned_run(config, cache, checkpoint=mgr))

    resumed_summary, resumed_rec = traced(resumed)

    assert resumed_summary == clean_summary
    assert len(resumed_rec.events) == len(clean_rec.events)
    assert list(resumed_rec.events) == list(clean_rec.events)
    assert resumed_rec.metrics == clean_rec.metrics


def test_resume_continues_checkpointing_on_the_same_grid(tmp_path):
    """A resumed run's later snapshots land on the same k*interval due
    grid the uninterrupted run would have used."""
    config = _config()
    cache = PipelineCache()
    ckpt_dir = tmp_path / "ck"
    partial = CheckpointManager(ckpt_dir, interval=4.0)
    _tuned_run(config, cache, checkpoint=partial, until=9.0)
    resumed_mgr = CheckpointManager(ckpt_dir, interval=4.0)
    _tuned_run(config, cache, checkpoint=resumed_mgr)
    # The resumed run keeps saving on the same absolute grid: the
    # partial run covered due points 4 and 8, the resumed run 12 and
    # 16 (a save records the sim time just *before* the triggering
    # event, so compare against the preceding grid point).
    assert resumed_mgr.saves >= 2
    state = resumed_mgr.latest_state()
    assert state is not None
    assert state["now"] >= 12.0


def test_restore_rejects_machine_mismatch(tmp_path):
    from repro.sim.machine import many_core_amp

    config = _config()
    cache = PipelineCache()
    mgr = CheckpointManager(tmp_path / "ck", interval=3.0)
    _tuned_run(config, cache, checkpoint=mgr, until=8.0)
    state = mgr.latest_state()
    assert state is not None
    other = Simulation(many_core_amp())
    with pytest.raises(CheckpointError, match="cannot restore"):
        other.restore_state(state)


def test_from_snapshot_rejects_version_mismatch(tmp_path):
    with pytest.raises(CheckpointError, match="version"):
        Simulation.from_snapshot({"version": 999})
