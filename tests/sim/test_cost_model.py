"""Unit tests for the block cost model."""

import pytest

from repro.isa import ProgramBuilder
from repro.program import build_cfg
from repro.sim import core2quad_amp
from repro.sim.cost_model import CostModel, CostVector
from repro.sim.memory import MemoryModel
from repro.workloads.spec import spec_benchmark


@pytest.fixture()
def model(machine):
    return CostModel(machine)


def _block(build, regions=(("BIG", 32 << 20), ("MID", 1 << 20))):
    pb = ProgramBuilder("t")
    for name, size in regions:
        pb.region(name, size)
    with pb.proc("main") as b:
        build(b)
        b.ret()
    program = pb.build()
    return build_cfg(program["main"]).blocks[0], program


def test_compute_block_frequency_invariant_cycles(model, machine):
    block, program = _block(
        lambda b: [b.fmul("f1", "f1", "f2") for _ in range(8)]
    )
    fast, slow = machine.core_types()
    cf = model.block_cost(block, fast, program)
    cs = model.block_cost(block, slow, program)
    assert cf.cycles == pytest.approx(cs.cycles)
    assert cf.stall_cycles == 0.0


def test_memory_block_stalls_more_on_fast_core(model, machine):
    def build(b):
        for _ in range(6):
            b.load("r1", "BIG", index="r2", stride=64)

    block, program = _block(build)
    fast, slow = machine.core_types()
    cf = model.block_cost(block, fast, program)
    cs = model.block_cost(block, slow, program)
    assert cf.stall_cycles > cs.stall_cycles
    assert cf.compute_cycles == cs.compute_cycles
    # IPC: the slow core wastes fewer cycles per memory instruction.
    assert cs.ipc > cf.ipc


def test_l2_resident_block_counts_l2_hits(model, machine):
    def build(b):
        for _ in range(4):
            b.load("r1", "MID", index="r2", stride=64)

    block, program = _block(build)
    fast = machine.core_types()[0]
    cost = model.block_cost(block, fast, program)
    assert cost.l2_hits == pytest.approx(4.0)


def test_ipc_scale_realistic(model, machine):
    """Pure ALU code reaches IPC ~2, FP code ~1 (DESIGN.md commitments)."""
    alu, program = _block(lambda b: [b.add("r1", "r1", 1) for _ in range(20)])
    fast = machine.core_types()[0]
    assert 1.5 <= model.block_cost(alu, fast, program).ipc <= 2.1


def test_block_cost_cached(model, machine):
    block, program = _block(lambda b: b.add("r1", "r1", 1))
    fast = machine.core_types()[0]
    first = model.block_cost(block, fast, program)
    assert model.block_cost(block, fast, program) is first


def test_block_vector_covers_all_types(model, machine):
    block, program = _block(lambda b: b.load("r1", "BIG", index="r2", stride=64))
    vector = model.block_vector(block, program)
    assert set(vector.compute) == {"fast", "slow"}
    assert vector.instrs == len(block.instrs)


# -- vectorized vs scalar golden equality ---------------------------------------


class _ScalarMemory(MemoryModel):
    """Identical model, but its subclass type forces CostModel down the
    scalar per-instruction path (no _ProcCostTable)."""


def _all_blocks(program):
    for name in program.procedures:
        yield from build_cfg(program[name]).blocks


@pytest.mark.parametrize("bench", ["181.mcf", "164.gzip", "179.art"])
def test_vectorized_costs_match_scalar_reference(machine, bench):
    """The numpy per-procedure cost table must reproduce the scalar
    per-instruction loop bit for bit, on every block of real programs."""
    program = spec_benchmark(bench).program
    vectorized = CostModel(machine)
    scalar = CostModel(machine, memory=_ScalarMemory())
    blocks = 0
    for block in _all_blocks(program):
        for ctype in machine.core_types():
            got = vectorized.block_cost(block, ctype, program)
            ref = scalar.block_cost(block, ctype, program)
            assert got.instrs == ref.instrs
            assert got.compute_cycles == ref.compute_cycles
            assert got.stall_cycles == ref.stall_cycles
            assert got.l2_hits == ref.l2_hits
            blocks += 1
    assert blocks > 0


def test_custom_memory_subclass_skips_table(machine):
    """A memory-model subclass may override the analytic formulas, so
    the table shortcut must not be consulted for it."""
    block, program = _block(lambda b: b.load("r1", "BIG", index="r2", stride=64))
    model = CostModel(machine, memory=_ScalarMemory())
    assert model._table_for(block, program) is None
    # The scalar path still produces a full cost.
    fast = machine.core_types()[0]
    assert model.block_cost(block, fast, program).stall_cycles > 0


def test_cost_vector_arithmetic(machine):
    core_types = machine.core_types()
    a = CostVector.zero(core_types)
    a.instrs = 10.0
    a.compute["fast"] = 5.0
    a.stall["fast"] = 5.0
    b = CostVector.zero(core_types)
    b.add(a, scale=2.0)
    assert b.instrs == 20.0
    assert b.cycles("fast") == 20.0
    scaled = b.scaled(0.5)
    assert scaled.cycles("fast") == 10.0
    assert b.cycles("fast") == 20.0  # Original untouched.
    assert a.stall_fraction("fast") == pytest.approx(0.5)
    assert CostVector.zero(core_types).stall_fraction("fast") == 0.0
