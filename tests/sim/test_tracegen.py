"""Unit tests for trace generation."""

import pytest

from repro.errors import SimulationError
from repro.instrument import LoopStrategy, instrument
from repro.sim import BehaviorSpec, TraceGenerator, core2quad_amp
from repro.sim.process import Repeat, Segment
from tests.conftest import make_phased_program


@pytest.fixture()
def generator(machine):
    return TraceGenerator(machine)


def test_phased_program_expands_to_alternation(generator):
    program, spec = make_phased_program(outer=5)
    trace = generator.generate(program, spec)
    repeats = [n for n in trace.nodes if isinstance(n, Repeat)]
    assert len(repeats) == 1
    assert repeats[0].count == 5
    uids = [c.uid for c in repeats[0].children if isinstance(c, Segment)]
    assert any("loop" in u for u in uids)
    # Compute and memory phases appear as separate segments.
    assert len([u for u in uids if "@loop" in u]) >= 2


def test_homogeneous_loop_collapses(generator, loop_program):
    spec = BehaviorSpec(trip_counts={("main", "loop"): 1000})
    trace = generator.generate(loop_program, spec)
    assert all(isinstance(n, Segment) for n in trace.nodes)
    loop_seg = next(n for n in trace.nodes if n.iterations == 1000)
    assert loop_seg.cost.instrs > 0


def test_trip_counts_respected(generator, loop_program):
    short = generator.generate(
        loop_program, BehaviorSpec(trip_counts={("main", "loop"): 10})
    )
    long = generator.generate(
        loop_program, BehaviorSpec(trip_counts={("main", "loop"): 1000})
    )
    assert long.total_instrs() > 50 * short.total_instrs()


def test_unknown_trip_label_rejected(generator, loop_program):
    with pytest.raises(SimulationError, match="unknown label"):
        generator.generate(
            loop_program, BehaviorSpec(trip_counts={("main", "ghost"): 5})
        )


def test_non_loop_label_rejected(generator, diamond_program):
    with pytest.raises(SimulationError, match="not a loop header"):
        generator.generate(
            diamond_program, BehaviorSpec(trip_counts={("main", "join"): 5})
        )


def test_marks_attached_at_segment_entries(generator):
    program, spec = make_phased_program(outer=5)
    inst = instrument(program, LoopStrategy(20))
    trace = generator.generate(inst, spec)
    marked = [
        s for s in trace.segments() if s.entry_marks or s.embedded
    ]
    assert marked
    mark_ids = {
        ref.mark_id for s in trace.segments() for ref in s.entry_marks
    }
    assert mark_ids <= {m.mark_id for m in inst.marks}


def test_baseline_and_tuned_traces_have_same_work(generator):
    program, spec = make_phased_program(outer=5)
    inst = instrument(program, LoopStrategy(20))
    baseline = generator.generate(program, spec)
    tuned = generator.generate(inst, spec)
    assert tuned.total_instrs() == pytest.approx(baseline.total_instrs())
    assert tuned.total_cycles("fast") == pytest.approx(
        baseline.total_cycles("fast")
    )


def test_call_inlined_into_trace(generator, call_program):
    spec = BehaviorSpec(
        trip_counts={("main", "outer"): 5, ("helper", "hloop"): 100}
    )
    trace = generator.generate(call_program, spec)
    uids = []
    for node in trace.nodes:
        if isinstance(node, Repeat):
            uids.extend(c.uid for c in node.children if isinstance(c, Segment))
    assert any("helper" in u for u in uids)


def test_expansion_budget_forces_collapse(generator):
    program, spec = make_phased_program(outer=1000)
    small_budget = BehaviorSpec(
        trip_counts=spec.trip_counts, segment_budget=100
    )
    trace = generator.generate(program, small_budget)
    # The outer loop cannot expand within budget: collapsed to segments.
    assert all(isinstance(n, Segment) for n in trace.nodes)


def test_isolated_seconds_positive(generator, loop_program):
    trace = generator.generate(loop_program, BehaviorSpec())
    assert generator.isolated_seconds(trace) > 0


def test_recursive_program_traces(generator):
    from repro.isa import assemble

    program = assemble(
        """
        .proc main
            call rec
            ret
        .endproc
        .proc rec
            cmp r1, 0
            br le, out
            call rec
        out:
            ret
        .endproc
        """
    )
    trace = generator.generate(program, BehaviorSpec(recursion_depth=3))
    assert trace.total_instrs() > 0


def test_behavior_spec_with_trips_helper():
    spec = BehaviorSpec().with_trips(main__loop=77)
    assert spec.trip_counts[("main", "loop")] == 77
