"""Unit tests for the set-associative LRU cache."""

import pytest

from repro.errors import SimulationError
from repro.sim.cache import CacheHierarchy, SetAssociativeCache


def test_basic_hit_miss():
    cache = SetAssociativeCache(1024, associativity=2, line_size=64)
    assert not cache.access(0)      # Cold miss.
    assert cache.access(0)          # Hit.
    assert cache.access(63)         # Same line.
    assert not cache.access(64)     # Next line: cold miss.


def test_lru_eviction_within_set():
    # 2 sets, 2 ways, 64B lines = 256B. Lines 0,2,4 map to set 0.
    cache = SetAssociativeCache(256, associativity=2, line_size=64)
    cache.access(0 * 64)
    cache.access(2 * 64)
    cache.access(4 * 64)            # Evicts line 0 (LRU).
    assert not cache.access(0 * 64)
    assert cache.access(4 * 64)


def test_lru_order_updated_on_hit():
    cache = SetAssociativeCache(256, associativity=2, line_size=64)
    cache.access(0 * 64)
    cache.access(2 * 64)
    cache.access(0 * 64)            # Touch: line 2 is now LRU.
    cache.access(4 * 64)            # Evicts line 2.
    assert cache.access(0 * 64)
    assert not cache.access(2 * 64)


def test_working_set_fits_all_hits():
    cache = SetAssociativeCache(64 * 1024, associativity=8, line_size=64)
    addresses = list(range(0, 32 * 1024, 64))
    cache.access_stream(addresses)          # Warm up.
    stats = cache.access_stream(addresses)  # Steady state.
    assert stats.miss_rate == 0.0


def test_streaming_beyond_capacity_all_misses():
    cache = SetAssociativeCache(8 * 1024, associativity=8, line_size=64)
    addresses = list(range(0, 1024 * 1024, 64))
    cache.access_stream(addresses)          # Sweep once.
    stats = cache.access_stream(addresses)  # Sweep again: all evicted.
    assert stats.miss_rate == 1.0


def test_flush():
    cache = SetAssociativeCache(1024, associativity=2, line_size=64)
    cache.access(0)
    cache.flush()
    assert not cache.access(0)


def test_stats_accumulate():
    cache = SetAssociativeCache(1024, associativity=2, line_size=64)
    cache.access(0)
    cache.access(0)
    assert cache.stats.accesses == 2
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    cache.reset_stats()
    assert cache.stats.accesses == 0


@pytest.mark.parametrize(
    "capacity, assoc, line",
    [(1000, 2, 64), (1024, 2, 63), (0, 1, 64)],
)
def test_invalid_geometry_rejected(capacity, assoc, line):
    with pytest.raises(SimulationError):
        SetAssociativeCache(capacity, assoc, line)


def test_hierarchy_levels():
    hierarchy = CacheHierarchy(
        SetAssociativeCache(1024, 2, 64),
        SetAssociativeCache(8192, 4, 64),
    )
    assert hierarchy.access(0) == "mem"
    assert hierarchy.access(0) == "l1"
    # Touch enough lines to evict line 0 from L1 but not from L2.
    for line in range(1, 17):
        hierarchy.access(line * 64)
    assert hierarchy.access(0) == "l2"
