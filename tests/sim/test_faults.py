"""Unit tests for the deterministic fault-injection layer."""

import math
import pickle

import pytest

from repro.errors import AffinitySyscallError, FaultError
from repro.sim import Simulation, SimProcess, core2quad_amp
from repro.sim.cost_model import CostVector
from repro.sim.faults import (
    DvfsEvent,
    FaultInjector,
    FaultPlan,
    HotplugEvent,
    MemoryPressureEvent,
    SlotOutage,
)
from repro.sim.process import Segment, Trace


def _simple_segment(machine, cycles=1e7, instrs=5e6):
    vector = CostVector.zero(machine.core_types())
    vector.instrs = instrs
    for name in vector.compute:
        vector.compute[name] = cycles
    return Segment("seg", None, 1.0, vector)


def _proc(machine, pid=1, affinity=None, cycles=1e7):
    trace = Trace((_simple_segment(machine, cycles=cycles),))
    return SimProcess(
        pid, f"p{pid}", trace, affinity or machine.all_cores_mask,
        isolated_time=1.0,
    )


# -- FaultPlan validation -------------------------------------------------------


@pytest.mark.parametrize(
    "field", ["counter_fail_rate", "counter_corrupt_rate", "ipc_noise",
              "affinity_fail_rate"]
)
def test_rates_must_be_probabilities(field):
    with pytest.raises(FaultError, match="must be in"):
        FaultPlan(**{field: 1.5})
    with pytest.raises(FaultError, match="must be in"):
        FaultPlan(**{field: -0.1})


def test_negative_event_times_rejected():
    with pytest.raises(FaultError, match="before t=0"):
        FaultPlan(hotplug=(HotplugEvent(-1.0, 1, online=False),))
    with pytest.raises(FaultError, match="before t=0"):
        FaultPlan(dvfs=(DvfsEvent(-1.0, 1, 0.5),))


def test_nonpositive_dvfs_scale_rejected():
    with pytest.raises(FaultError, match="scale must be positive"):
        FaultPlan(dvfs=(DvfsEvent(1.0, 0, 0.0),))


def test_bad_outage_window_rejected():
    with pytest.raises(FaultError, match="bad slot outage"):
        FaultPlan(slot_outages=(SlotOutage(5.0, 2.0, 0),))


def test_default_plan_is_null():
    assert FaultPlan().is_null
    assert not FaultPlan(ipc_noise=0.1).is_null
    assert not FaultPlan(hotplug=(HotplugEvent(1.0, 1, online=False),)).is_null


def test_plan_is_picklable():
    machine = core2quad_amp()
    plan = FaultPlan.scaled(0.3, machine, 100.0, seed=3)
    assert pickle.loads(pickle.dumps(plan)) == plan


# -- FaultPlan.scaled -----------------------------------------------------------


def test_scaled_zero_rate_is_null():
    assert FaultPlan.scaled(0.0, core2quad_amp(), 100.0).is_null


def test_scaled_is_deterministic():
    machine = core2quad_amp()
    assert FaultPlan.scaled(0.2, machine, 50.0, seed=9) == FaultPlan.scaled(
        0.2, machine, 50.0, seed=9
    )
    assert FaultPlan.scaled(0.2, machine, 50.0, seed=9) != FaultPlan.scaled(
        0.2, machine, 50.0, seed=10
    )


def test_scaled_never_hotplugs_core_zero():
    machine = core2quad_amp()
    for seed in range(20):
        plan = FaultPlan.scaled(1.0, machine, 100.0, seed=seed)
        assert all(event.core_id != 0 for event in plan.hotplug)


def test_scaled_events_within_horizon():
    plan = FaultPlan.scaled(1.0, core2quad_amp(), 100.0, seed=4)
    for event in plan.hotplug + plan.dvfs:
        assert 0.0 <= event.time <= 100.0


def test_scaled_rate_validation():
    machine = core2quad_amp()
    with pytest.raises(FaultError):
        FaultPlan.scaled(1.5, machine, 100.0)
    with pytest.raises(FaultError):
        FaultPlan.scaled(0.5, machine, 0.0)


# -- FaultInjector --------------------------------------------------------------


def test_injector_rejects_out_of_range_cores():
    machine = core2quad_amp()
    with pytest.raises(FaultError, match="out of range"):
        FaultInjector(
            FaultPlan(hotplug=(HotplugEvent(1.0, 99, online=False),)), machine
        )
    with pytest.raises(FaultError, match="out of range"):
        FaultInjector(FaultPlan(dvfs=(DvfsEvent(1.0, 99, 0.5),)), machine)
    with pytest.raises(FaultError, match="out of range"):
        FaultInjector(
            FaultPlan(slot_outages=(SlotOutage(0.0, 1.0, 99),)), machine
        )


def test_injector_replays_bit_identically():
    machine = core2quad_amp()
    plan = FaultPlan(
        seed=5, counter_fail_rate=0.4, counter_corrupt_rate=0.3,
        ipc_noise=0.2, affinity_fail_rate=0.4,
    )

    def drive(injector):
        out = []
        for i in range(200):
            out.append(injector.counter_acquire_fails(i % 4, float(i)))
            out.append(injector.sample_read_factor())
            try:
                injector.check_affinity_call(i, float(i))
                out.append(None)
            except AffinitySyscallError as exc:
                out.append(exc.errno_name)
        return out

    assert drive(FaultInjector(plan, machine)) == drive(
        FaultInjector(plan, machine)
    )


def test_zero_rates_draw_no_rng():
    """A class at rate zero must not consume random numbers, or a null
    field would shift every other class's stream."""
    machine = core2quad_amp()
    plan = FaultPlan(seed=5, affinity_fail_rate=0.5)
    reference = FaultInjector(plan, machine)
    mixed = FaultInjector(plan, machine)
    # Zero-rate classes are exercised heavily on one injector only.
    for i in range(100):
        assert mixed.counter_acquire_fails(0, float(i)) is False
        assert mixed.sample_read_factor() == 1.0
    # The affinity stream is unaffected: both injectors agree.
    for i in range(50):
        a = b = None
        try:
            reference.check_affinity_call(i, 0.0)
        except AffinitySyscallError as exc:
            a = exc.errno_name
        try:
            mixed.check_affinity_call(i, 0.0)
        except AffinitySyscallError as exc:
            b = exc.errno_name
        assert a == b


def test_slot_outage_window():
    machine = core2quad_amp()
    plan = FaultPlan(slot_outages=(SlotOutage(10.0, 20.0, 1, slots=2),))
    injector = FaultInjector(plan, machine)
    assert injector.slots_unavailable(1, 5.0) == 0
    assert injector.slots_unavailable(1, 10.0) == 2
    assert injector.slots_unavailable(1, 19.9) == 2
    assert injector.slots_unavailable(1, 20.0) == 0
    assert injector.slots_unavailable(0, 15.0) == 0
    assert injector.fired["slot_outage_hits"] == 2


def test_corruption_factor_is_wild():
    machine = core2quad_amp()
    plan = FaultPlan(seed=1, counter_corrupt_rate=1.0)
    injector = FaultInjector(plan, machine)
    factors = [injector.sample_read_factor() for _ in range(50)]
    assert injector.fired["counter_corrupt"] == 50
    assert all(f > 0 and math.isfinite(f) for f in factors)
    assert any(f > 2.0 or f < 0.5 for f in factors)


# -- Simulation wiring ----------------------------------------------------------


def test_simulation_rejects_bad_faults_argument(machine):
    with pytest.raises(FaultError, match="FaultPlan or FaultInjector"):
        Simulation(machine, faults="high")


def test_null_plan_leaves_simulation_byte_identical(machine):
    def run(faults):
        sim = Simulation(machine, faults=faults)
        procs = [_proc(machine, pid=i) for i in range(6)]
        for proc in procs:
            sim.add_process(proc, 0.0)
        sim.run(100.0)
        return [
            (p.completion, p.stats.instructions, dict(p.stats.cycles_by_type))
            for p in procs
        ]

    assert run(None) == run(FaultPlan())


def test_hotplug_offline_core_gets_no_cycles(machine):
    """While core 3 is down, nothing executes there; its queue drains."""
    plan = FaultPlan(hotplug=(HotplugEvent(0.0, 3, online=False),))
    sim = Simulation(machine, faults=plan)
    procs = [_proc(machine, pid=i) for i in range(4)]
    for proc in procs:
        sim.add_process(proc, 0.0)
    result = sim.run(100.0)
    assert len(result.completed) == 4
    assert sim.faults.fired["hotplug"] == 1


def test_hotplug_breaks_affinity_rather_than_stranding(machine):
    """A process pinned to an offlined core falls back kernel-style."""
    plan = FaultPlan(hotplug=(HotplugEvent(0.0, 3, online=False),))
    sim = Simulation(machine, faults=plan)
    pinned = _proc(machine, pid=1, affinity=frozenset({3}))
    sim.add_process(pinned, 0.0)
    result = sim.run(100.0)
    assert result.completed == [pinned]
    assert sim.scheduler.affinity_breaks >= 1


def test_last_online_core_survives(machine):
    """A plan taking down every core is clipped, never fatal."""
    plan = FaultPlan(
        hotplug=tuple(
            HotplugEvent(0.0, cid, online=False) for cid in range(4)
        )
    )
    sim = Simulation(machine, faults=plan)
    proc = _proc(machine)
    sim.add_process(proc, 0.0)
    result = sim.run(100.0)
    assert result.completed == [proc]
    assert sim.faults.fired["skipped_events"] == 1
    assert sim.faults.fired["hotplug"] == 3


def test_core_comes_back_online(machine):
    plan = FaultPlan(
        hotplug=(
            HotplugEvent(0.0, 3, online=False),
            HotplugEvent(0.001, 3, online=True),
        )
    )
    sim = Simulation(machine, faults=plan)
    early = _proc(machine, pid=1, affinity=frozenset({3}))
    late = _proc(machine, pid=2, affinity=frozenset({3}))
    sim.add_process(early, 0.0)  # placed elsewhere: core 3 is down
    sim.add_process(late, 0.01)  # core 3 is back: placed on it
    result = sim.run(100.0)
    assert len(result.completed) == 2
    assert sim.faults.fired["hotplug"] == 2
    assert sim.scheduler.affinity_breaks == 1
    # The late arrival honoured its affinity on the re-onlined core.
    assert set(late.stats.cycles_by_type) == {"slow"}


def test_dvfs_slows_completion(machine):
    def completion(faults):
        sim = Simulation(machine, faults=faults)
        proc = _proc(machine, pid=1, affinity=frozenset({0}))
        sim.add_process(proc, 0.0)
        sim.run(100.0)
        return proc.completion

    slowed = completion(FaultPlan(dvfs=(DvfsEvent(0.0, 0, 0.5),)))
    nominal = completion(None)
    assert slowed == pytest.approx(2.0 * nominal, rel=0.05)


# -- memory pressure ------------------------------------------------------------


def _memory_proc(machine, pid=1, affinity=None, cycles=1e8):
    """A process whose segment keeps L2-resident lines (pressure bites)."""
    vector = CostVector.zero(machine.core_types())
    vector.instrs = 5e6
    for name in vector.compute:
        vector.compute[name] = cycles
        vector.stall[name] = cycles
        vector.l2hits[name] = 0.5
    trace = Trace((_mk_segment(vector),))
    return SimProcess(
        pid, f"m{pid}", trace, affinity or machine.all_cores_mask,
        isolated_time=1.0,
    )


def _mk_segment(vector, iterations=1e6):
    per_iter = CostVector(
        vector.instrs / iterations,
        {k: v / iterations for k, v in vector.compute.items()},
        {k: v / iterations for k, v in vector.stall.items()},
        dict(vector.l2hits),
    )
    return Segment("seg", None, iterations, per_iter)


def test_mem_pressure_validation():
    with pytest.raises(FaultError, match="before t=0"):
        FaultPlan(mem_pressure=(MemoryPressureEvent(-1.0, 0, 0.5),))
    with pytest.raises(FaultError, match="shrink must be in"):
        FaultPlan(mem_pressure=(MemoryPressureEvent(1.0, 0, 1.5),))
    with pytest.raises(FaultError, match="shrink must be in"):
        FaultPlan(mem_pressure=(MemoryPressureEvent(1.0, 0, -0.1),))


def test_mem_pressure_core_out_of_range():
    machine = core2quad_amp()
    with pytest.raises(FaultError, match="out of range"):
        FaultInjector(
            FaultPlan(mem_pressure=(MemoryPressureEvent(1.0, 99, 0.5),)),
            machine,
        )


def test_mem_pressure_plan_not_null():
    plan = FaultPlan(mem_pressure=(MemoryPressureEvent(1.0, 0, 0.5),))
    assert not plan.is_null
    assert pickle.loads(pickle.dumps(plan)) == plan


def test_mem_pressure_slows_memory_bound_process(machine):
    def completion(faults):
        sim = Simulation(machine, faults=faults)
        proc = _memory_proc(machine, affinity=frozenset({0}))
        sim.add_process(proc, 0.0)
        sim.run(100.0)
        assert proc.finished
        return proc.completion

    nominal = completion(None)
    pressured = completion(
        FaultPlan(mem_pressure=(MemoryPressureEvent(0.0, 0, 0.9),))
    )
    assert pressured > nominal
    # Pressure on an unused core changes nothing.
    elsewhere = completion(
        FaultPlan(mem_pressure=(MemoryPressureEvent(0.0, 3, 0.9),))
    )
    assert elsewhere == nominal


def test_mem_pressure_restore_ends_slowdown(machine):
    def completion(faults):
        sim = Simulation(machine, faults=faults)
        proc = _memory_proc(machine, affinity=frozenset({0}))
        sim.add_process(proc, 0.0)
        sim.run(100.0)
        return proc.completion

    nominal = completion(None)
    always = completion(
        FaultPlan(mem_pressure=(MemoryPressureEvent(0.0, 0, 0.9),))
    )
    windowed = completion(
        FaultPlan(
            mem_pressure=(
                MemoryPressureEvent(0.0, 0, 0.9),
                MemoryPressureEvent(nominal / 4.0, 0, 0.0),
            )
        )
    )
    assert nominal < windowed < always
    # Restore and shrink both count as fired applications.


def test_mem_pressure_compute_bound_process_unaffected(machine):
    """No L2-resident lines -> nothing to evict -> no slowdown."""
    def completion(faults):
        sim = Simulation(machine, faults=faults)
        proc = _proc(machine, affinity=frozenset({0}))  # l2hits == 0
        sim.add_process(proc, 0.0)
        sim.run(100.0)
        return proc.completion

    nominal = completion(None)
    pressured = completion(
        FaultPlan(mem_pressure=(MemoryPressureEvent(0.0, 0, 0.9),))
    )
    assert pressured == nominal


def test_scaled_mem_pressure_rate():
    machine = core2quad_amp()
    plan = FaultPlan.scaled(
        0.0, machine, 100.0, seed=7, mem_pressure_rate=0.5
    )
    assert plan.mem_pressure and not plan.hotplug and not plan.dvfs
    # Paired shrink/restore windows within the horizon, shrink in range.
    assert len(plan.mem_pressure) % 2 == 0
    for event in plan.mem_pressure:
        assert 0.0 <= event.time <= 100.0
        assert 0.0 <= event.shrink <= 1.0
    restores = [e for e in plan.mem_pressure if e.shrink == 0.0]
    assert len(restores) == len(plan.mem_pressure) // 2
    # Deterministic in the seed.
    again = FaultPlan.scaled(
        0.0, machine, 100.0, seed=7, mem_pressure_rate=0.5
    )
    assert again == plan


def test_scaled_without_mem_pressure_unchanged():
    """The new knob must not shift the pre-existing fault draws."""
    machine = core2quad_amp()
    base = FaultPlan.scaled(0.4, machine, 100.0, seed=11)
    assert base.mem_pressure == ()
    with_rate = FaultPlan.scaled(
        0.4, machine, 100.0, seed=11, mem_pressure_rate=0.3
    )
    assert with_rate.hotplug == base.hotplug
    assert with_rate.dvfs == base.dvfs
    assert with_rate.slot_outages == base.slot_outages
    assert with_rate.mem_pressure


# -- clock drift ----------------------------------------------------------------


def test_clock_drift_validation():
    from repro.sim.faults import ClockDrift

    for bad in (0.0, -0.5, float("inf"), float("nan")):
        with pytest.raises(FaultError, match="skew must be positive"):
            FaultPlan(clock_drift=(ClockDrift(0, bad),))
    with pytest.raises(FaultError, match="out of range"):
        FaultInjector(
            FaultPlan(clock_drift=(ClockDrift(99, 1.05),)), core2quad_amp()
        )


def test_clock_drift_plan_not_null():
    from repro.sim.faults import ClockDrift

    assert not FaultPlan(clock_drift=(ClockDrift(0, 1.02),)).is_null


def test_scaled_clock_drift_deterministic_and_bounded():
    machine = core2quad_amp()
    plan = FaultPlan.scaled(
        0.0, machine, 100.0, seed=5, clock_drift_rate=0.5
    )
    assert plan.clock_drift and not plan.hotplug and not plan.mem_pressure
    assert plan == FaultPlan.scaled(
        0.0, machine, 100.0, seed=5, clock_drift_rate=0.5
    )
    for drift in plan.clock_drift:
        assert 0 <= drift.core_id < len(machine)
        assert drift.skew != 1.0
        # rate 0.5 bounds the magnitude at 0.08 * 0.5.
        assert abs(drift.skew - 1.0) <= 0.08 * 0.5 + 1e-12


def test_scaled_without_clock_drift_unchanged():
    """The new knob draws from its own RNG stream: adding it must not
    shift any pre-existing fault draw, so existing plans (and their
    runs) stay bit-identical."""
    machine = core2quad_amp()
    base = FaultPlan.scaled(0.4, machine, 100.0, seed=11, mem_pressure_rate=0.3)
    assert base.clock_drift == ()
    with_drift = FaultPlan.scaled(
        0.4, machine, 100.0, seed=11, mem_pressure_rate=0.3,
        clock_drift_rate=0.5,
    )
    assert with_drift.hotplug == base.hotplug
    assert with_drift.dvfs == base.dvfs
    assert with_drift.slot_outages == base.slot_outages
    assert with_drift.mem_pressure == base.mem_pressure
    assert with_drift.clock_drift
    assert FaultPlan.scaled(
        0.4, machine, 100.0, seed=11, mem_pressure_rate=0.3,
        clock_drift_rate=0.0,
    ) == base


def test_cycle_skew_reads_draw_no_rng():
    from repro.sim.faults import ClockDrift

    machine = core2quad_amp()
    injector = FaultInjector(
        FaultPlan(seed=3, clock_drift=(ClockDrift(1, 1.05),)), machine
    )
    before = injector._rng.getstate()
    assert injector.cycle_skew(0) == 1.0
    assert injector.cycle_skew(1) == 1.05
    assert injector._rng.getstate() == before
    assert injector.fired["clock_drift"] == 1


def test_clock_drift_skews_monitored_ipc():
    """The monitor's measured cycle delta is multiplied by the observed
    core's skew, biasing the IPC sample accordingly."""
    from repro.sim.counters import CounterBank
    from repro.sim.faults import ClockDrift
    from repro.tuning.monitor import SectionMonitor

    machine = core2quad_amp()

    def measure(plan):
        monitor = SectionMonitor(
            CounterBank(n_cores=len(machine.cores)),
            min_sample_cycles=0.0,
            noise=0.0,
        )
        if plan is not None:
            monitor.injector = FaultInjector(plan, machine)
        proc = _proc(machine)
        core = machine.cores[0]
        assert monitor.try_open(proc, 0, core, now=0.0)
        proc.stats.instrs_by_type[core.ctype.name] = 2e6
        proc.stats.cycles_by_type[core.ctype.name] = 1e6
        sample = monitor.close(proc)
        assert sample is not None
        return sample[2]

    clean_ipc = measure(None)
    skewed_ipc = measure(
        FaultPlan(seed=0, clock_drift=(ClockDrift(0, 1.25),))
    )
    assert skewed_ipc == pytest.approx(clean_ipc / 1.25)


def test_clock_drift_run_is_deterministic(machine):
    """Two identical runs under the same drift plan match bit for bit."""
    plan = FaultPlan.scaled(
        0.2, machine, 40.0, seed=9, clock_drift_rate=0.6
    )

    def run_once():
        simulation = Simulation(machine, faults=plan)
        simulation.add_process(_proc(machine, cycles=5e7), 0.0)
        simulation.add_process(_proc(machine, pid=2, cycles=5e7), 0.0)
        result = simulation.run(40.0)
        return [
            (p.pid, p.stats.instructions, dict(p.stats.cycles_by_type))
            for p in result.completed + result.running
        ]

    assert run_once() == run_once()
