"""Unit tests for the analytic memory model."""

import pytest

from repro.isa.instructions import MemAccess
from repro.isa import ProgramBuilder
from repro.sim.machine import FAST, SLOW
from repro.sim.memory import MemoryModel


def _program():
    pb = ProgramBuilder("t")
    pb.region("HUGE", 64 << 20)      # Beyond L2.
    pb.region("MID", 1 << 20)        # Fits L2, exceeds L1.
    pb.region("TINY", 8 << 10)       # Fits L1.
    with pb.proc("main") as b:
        b.ret()
    return pb.build()


def test_scalar_never_misses():
    model = MemoryModel()
    profile = model.miss_profile(MemAccess("HUGE", 0), _program(), FAST)
    assert profile.l1_misses == 0.0
    assert profile.l2_misses == 0.0


def test_l1_resident_region():
    model = MemoryModel()
    profile = model.miss_profile(MemAccess("TINY", 8), _program(), FAST)
    assert profile.l1_misses == 0.0


def test_l2_resident_region():
    model = MemoryModel()
    profile = model.miss_profile(MemAccess("MID", 64), _program(), FAST)
    assert profile.l1_misses == 1.0   # Every line is new to L1.
    assert profile.l2_misses == 0.0   # But L2 holds the set.
    assert profile.l2_hits == 1.0


def test_streaming_region_misses_both():
    model = MemoryModel()
    profile = model.miss_profile(MemAccess("HUGE", 64), _program(), FAST)
    assert profile.l1_misses == 1.0
    assert profile.l2_misses == 1.0


def test_spatial_locality_scales_with_stride():
    model = MemoryModel()
    dense = model.miss_profile(MemAccess("HUGE", 4), _program(), FAST)
    sparse = model.miss_profile(MemAccess("HUGE", 64), _program(), FAST)
    assert dense.l2_misses == pytest.approx(4 / 64)
    assert sparse.l2_misses == 1.0


def test_dram_stall_cycles_scale_with_frequency():
    """The asymmetry mechanism: fixed DRAM nanoseconds cost more cycles
    on the faster core."""
    model = MemoryModel()
    program = _program()
    access = MemAccess("HUGE", 64)
    fast_stall = model.stall_cycles(access, program, FAST)
    slow_stall = model.stall_cycles(access, program, SLOW)
    assert fast_stall / slow_stall == pytest.approx(2.4 / 1.6)


def test_l2_hit_cycles_frequency_invariant():
    """On-chip L2 is clocked with the core: same cycle count."""
    model = MemoryModel()
    program = _program()
    access = MemAccess("MID", 64)
    assert model.stall_cycles(access, program, FAST) == pytest.approx(
        model.stall_cycles(access, program, SLOW)
    )


def test_dram_penalty():
    model = MemoryModel(dram_latency_ns=50.0)
    assert model.dram_penalty_cycles(FAST) == pytest.approx(120.0)
    assert model.dram_penalty_cycles(SLOW) == pytest.approx(80.0)
