"""Unit tests for cores and machine configurations."""

import pytest

from repro.errors import SimulationError
from repro.sim import core2quad_amp, symmetric_machine, three_core_amp
from repro.sim.core import Core, CoreType
from repro.sim.machine import MachineConfig


def test_core2quad_layout():
    machine = core2quad_amp()
    assert len(machine) == 4
    types = machine.core_types()
    assert [t.name for t in types] == ["fast", "slow"]
    assert types[0].freq_ghz == 2.4
    assert types[1].freq_ghz == 1.6
    assert machine.cores_of_type(types[0]) == [0, 1]
    assert machine.cores_of_type(types[1]) == [2, 3]


def test_l2_pairing():
    """Cores running at the same frequency share an L2 (paper IV-A1)."""
    machine = core2quad_amp()
    assert machine.l2_neighbors(0) == [1]
    assert machine.l2_neighbors(1) == [0]
    assert machine.l2_neighbors(2) == [3]
    assert machine.l2_neighbors(3) == [2]


def test_three_core_setup():
    machine = three_core_amp()
    assert len(machine) == 3
    fast, slow = machine.core_types()
    assert len(machine.cores_of_type(fast)) == 2
    assert len(machine.cores_of_type(slow)) == 1
    assert machine.is_asymmetric()


def test_symmetric_machine():
    machine = symmetric_machine(4)
    assert not machine.is_asymmetric()
    assert len(machine.core_types()) == 1


def test_affinity_masks():
    machine = core2quad_amp()
    fast, slow = machine.core_types()
    assert machine.affinity_of_type(fast) == frozenset({0, 1})
    assert machine.affinity_of_type(slow) == frozenset({2, 3})
    assert machine.all_cores_mask == frozenset({0, 1, 2, 3})


def test_dense_core_ids_enforced():
    fast = CoreType("f", 2.0)
    with pytest.raises(SimulationError, match="dense"):
        MachineConfig("bad", (Core(1, fast, 0),))


def test_empty_machine_rejected():
    with pytest.raises(SimulationError, match="no cores"):
        MachineConfig("empty", ())


def test_core_type_derived_units():
    ct = CoreType("x", 2.4, l1_kb=32, l2_kb=4096)
    assert ct.freq_hz == pytest.approx(2.4e9)
    assert ct.l1_bytes == 32 * 1024
    assert ct.l2_bytes == 4096 * 1024
