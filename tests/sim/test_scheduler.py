"""Unit tests for the O(1)-like scheduler and the affinity API."""

import pytest

from repro.errors import SchedulingError
from repro.sim import core2quad_amp
from repro.sim.cost_model import CostVector
from repro.sim.process import Segment, SimProcess, Trace
from repro.sim.scheduler import LinuxO1Scheduler, pick_core, validate_affinity


def _proc(pid, affinity, machine):
    vector = CostVector.zero(machine.core_types())
    vector.instrs = 1.0
    vector.compute["fast"] = 1.0
    vector.compute["slow"] = 1.0
    trace = Trace((Segment("s", None, 1.0, vector),))
    return SimProcess(pid, f"p{pid}", trace, affinity)


@pytest.fixture()
def scheduler(machine):
    sched = LinuxO1Scheduler()
    sched.attach(machine, waker=lambda core, now: None)
    return sched


def test_affinity_validation():
    assert validate_affinity(frozenset({0, 1}), 4) == frozenset({0, 1})
    with pytest.raises(SchedulingError, match="excludes every core"):
        validate_affinity(frozenset(), 4)
    with pytest.raises(SchedulingError, match="unknown cores"):
        validate_affinity(frozenset({7}), 4)


def test_pick_core_least_loaded():
    load = {0: 3, 1: 1, 2: 2}
    assert pick_core(frozenset({0, 1, 2}), load) == 1
    # Preference wins ties against the best alternative.
    assert pick_core(frozenset({0, 1, 2}), {0: 1, 1: 1, 2: 1}, prefer=2) == 2
    # But not when the preferred core is busier.
    assert pick_core(frozenset({0, 1}), {0: 5, 1: 0}, prefer=0) == 1


def test_enqueue_respects_affinity(scheduler, machine):
    proc = _proc(1, frozenset({2, 3}), machine)
    scheduler.enqueue(proc, 0.0)
    assert scheduler.queue_length(2) + scheduler.queue_length(3) == 1
    assert scheduler.queue_length(0) == 0


def test_enqueue_balances_by_length(scheduler, machine):
    procs = [_proc(i, machine.all_cores_mask, machine) for i in range(8)]
    for p in procs:
        scheduler.enqueue(p, 0.0)
    lengths = [scheduler.queue_length(c.cid) for c in machine.cores]
    assert max(lengths) - min(lengths) <= 1


def test_pick_fifo_order(scheduler, machine):
    a = _proc(1, frozenset({0}), machine)
    b = _proc(2, frozenset({0}), machine)
    scheduler.enqueue(a, 0.0)
    scheduler.enqueue(b, 0.0)
    assert scheduler.pick(0, 0.0) is a
    assert scheduler.pick(0, 0.0) is b


def test_idle_core_steals(scheduler, machine):
    for i in range(3):
        scheduler.enqueue(_proc(i, frozenset({0}) | {1}, machine), 0.0)
    # Force everything onto core 0's queue.
    sched = LinuxO1Scheduler()
    sched.attach(machine, waker=lambda c, t: None)
    victims = [_proc(i, machine.all_cores_mask, machine) for i in range(3)]
    for v in victims:
        sched._queues[0].append(v)
    stolen = sched.pick(3, 0.0)
    assert stolen in victims
    assert sched.steals == 1


def test_steal_respects_affinity(machine):
    sched = LinuxO1Scheduler()
    sched.attach(machine, waker=lambda c, t: None)
    pinned = _proc(1, frozenset({0}), machine)
    sched._queues[0].append(pinned)
    assert sched.pick(3, 0.0) is None  # Cannot steal a core-0-pinned job.
    assert sched.pick(0, 0.0) is pinned


def test_requeue_migrates_on_affinity_change(scheduler, machine):
    proc = _proc(1, machine.all_cores_mask, machine)
    scheduler.enqueue(proc, 0.0)
    picked = None
    for cid in range(4):
        candidate = scheduler.pick(cid, 0.0)
        if candidate is not None:
            picked = (cid, candidate)
            break
    cid, proc = picked
    proc.affinity = frozenset({2, 3}) - {cid} or frozenset({2, 3})
    proc.affinity = frozenset({2, 3})
    scheduler.requeue(proc, 0, 0.0)
    assert scheduler.queue_length(2) + scheduler.queue_length(3) >= 1


def test_periodic_balance_moves_work(machine):
    sched = LinuxO1Scheduler(balance_interval=0.0)
    sched.attach(machine, waker=lambda c, t: None)
    for i in range(6):
        sched._queues[0].append(_proc(i, machine.all_cores_mask, machine))
    sched.pick(0, 1.0)  # Triggers the balance pass.
    lengths = [sched.queue_length(c.cid) for c in machine.cores]
    assert max(lengths) - min(lengths) <= 1


def test_bad_timeslice_rejected():
    with pytest.raises(SchedulingError):
        LinuxO1Scheduler(timeslice=0.0)
