"""Unit tests for the event queue."""

import heapq

from repro.sim.events import EventQueue


def test_orders_by_time():
    q = EventQueue()
    q.push(3.0, "c")
    q.push(1.0, "a")
    q.push(2.0, "b")
    assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]


def test_fifo_within_equal_times():
    q = EventQueue()
    for i in range(5):
        q.push(1.0, i)
    assert [q.pop()[1] for _ in range(5)] == [0, 1, 2, 3, 4]


def test_len():
    q = EventQueue()
    assert len(q) == 0
    q.push(2.5, "x")
    assert len(q) == 1
    q.pop()
    assert len(q) == 0


def test_heap_fast_path_matches_wrapper_order():
    """The executor reads ``_heap``/``_seq`` directly; the wrappers and
    the raw heap must agree on delivery order for the same pushes,
    including pushes made through the raw fast path itself."""
    times = [3.0, 1.0, 1.0, 2.0, 1.0, 3.0, 0.5, 2.0]

    wrapped = EventQueue()
    for i, t in enumerate(times):
        wrapped.push(t, i)
    via_wrapper = [wrapped.pop() for _ in range(len(times))]

    raw = EventQueue()
    for i, t in enumerate(times):
        # The run loop's inlined push: same tuple layout, same counter.
        heapq.heappush(raw._heap, (t, raw._seq, i))
        raw._seq += 1
    via_heap = []
    while raw._heap:
        t, _, payload = heapq.heappop(raw._heap)
        via_heap.append((t, payload))

    assert via_wrapper == via_heap
    assert [p for _, p in via_heap] == [6, 1, 2, 4, 3, 7, 0, 5]
