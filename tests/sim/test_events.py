"""Unit tests for the event queue."""

from repro.sim.events import EventQueue


def test_orders_by_time():
    q = EventQueue()
    q.push(3.0, "c")
    q.push(1.0, "a")
    q.push(2.0, "b")
    assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]


def test_fifo_within_equal_times():
    q = EventQueue()
    for i in range(5):
        q.push(1.0, i)
    assert [q.pop()[1] for _ in range(5)] == [0, 1, 2, 3, 4]


def test_peek_and_len():
    q = EventQueue()
    assert q.peek_time() is None
    assert not q
    q.push(2.5, "x")
    assert q.peek_time() == 2.5
    assert len(q) == 1
    assert bool(q)
    q.pop()
    assert len(q) == 0
