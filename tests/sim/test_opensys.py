"""Unit tests for the open-system workload engine."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.errors import OpenSystemError
from repro.sim import Simulation, SimProcess, core2quad_amp
from repro.sim.cost_model import CostVector
from repro.sim.opensys import (
    OPEN_PID_BASE,
    LoadController,
    OpenSystemPlan,
    OpenSystemResult,
    OpenSystemRun,
    service_capacity,
)
from repro.sim.process import Segment, Trace
from repro.sim.scheduler import LinuxO1Scheduler
from repro.taxonomy import state_of
from repro.workloads.workload import Workload, WorkloadRun

CLASSES = ("164.gzip", "429.mcf")


def _proc(machine, pid, cycles=1e7):
    vector = CostVector.zero(machine.core_types())
    vector.instrs = 5e6
    for name in vector.compute:
        vector.compute[name] = cycles
    trace = Trace((Segment("seg", None, 1.0, vector),))
    return SimProcess(pid, f"p{pid}", trace, machine.all_cores_mask,
                      isolated_time=1.0)


# -- plan ---------------------------------------------------------------------


def test_plan_arrivals_deterministic_and_bounded():
    plan = OpenSystemPlan(seed=5, rate=0.8, horizon=50.0, classes=CLASSES)
    a1, a2 = plan.arrivals(), plan.arrivals()
    assert a1 == a2
    assert a1
    assert all(0.0 < t < 50.0 for t, _ in a1)
    assert all(name in CLASSES for _, name in a1)
    times = [t for t, _ in a1]
    assert times == sorted(times)


def test_plan_uniform_process_is_deterministic_rate():
    plan = OpenSystemPlan(
        seed=5, rate=0.5, horizon=10.0, process="uniform", classes=CLASSES
    )
    times = [t for t, _ in plan.arrivals()]
    assert times == pytest.approx([2.0, 4.0, 6.0, 8.0])


def test_plan_rng_streams_independent():
    """Turning a knob on never shifts the draws behind another knob."""
    bare = OpenSystemPlan(seed=9, rate=0.6, horizon=40.0, classes=CLASSES)
    knobbed = OpenSystemPlan(
        seed=9, rate=0.6, horizon=40.0, classes=CLASSES,
        cancel_fraction=0.5, breakdowns=2,
    )
    assert bare.arrivals() == knobbed.arrivals()


def test_plan_cancellations_follow_arrivals():
    plan = OpenSystemPlan(
        seed=3, rate=1.0, horizon=40.0, classes=CLASSES, cancel_fraction=0.5
    )
    arrivals = plan.arrivals()
    cancels = plan.cancellations(arrivals)
    assert cancels == plan.cancellations(arrivals)
    assert 0 < len(cancels) < len(arrivals)
    for when, index in cancels:
        assert when > arrivals[index][0]


def test_plan_breakdowns_spare_core_zero():
    plan = OpenSystemPlan(seed=1, breakdowns=3, horizon=100.0)
    fault_plan = plan.breakdown_plan(core2quad_amp())
    events = fault_plan.hotplug
    assert len(events) == 6
    for down, up in zip(events[::2], events[1::2]):
        assert down.core_id == up.core_id != 0
        assert not down.online and up.online
        assert 0.0 < down.time < up.time <= 95.0


def test_plan_null_and_single_core_breakdowns_build_no_fault_plan(machine):
    assert OpenSystemPlan(seed=1).breakdown_plan(machine) is None
    from repro.sim.machine import symmetric_machine

    single = symmetric_machine(1)
    assert OpenSystemPlan(seed=1, breakdowns=2).breakdown_plan(single) is None


def test_plan_validation():
    with pytest.raises(OpenSystemError):
        OpenSystemPlan(rate=-1.0)
    with pytest.raises(OpenSystemError):
        OpenSystemPlan(horizon=0.0)
    with pytest.raises(OpenSystemError):
        OpenSystemPlan(process="bursty")
    with pytest.raises(OpenSystemError):
        OpenSystemPlan(rate=1.0)  # arrivals need classes
    with pytest.raises(OpenSystemError):
        OpenSystemPlan(cancel_fraction=1.5)
    with pytest.raises(OpenSystemError):
        OpenSystemPlan(breakdown_length=(0.0, 0.5))


# -- cancellation through the executor ---------------------------------------


def test_cancel_queued_process_teardown(machine):
    """A queued job is removed cleanly: runqueue, live set, ledger."""
    cancelled = []
    sim = Simulation(machine, on_cancel=lambda p, t: cancelled.append((p, t)))
    # 5 jobs on a 4-core machine: someone is always queued.
    procs = [_proc(machine, pid=i, cycles=5e8) for i in range(1, 6)]
    for proc in procs:
        sim.add_process(proc, 0.0)
    sim.cancel_process(3, 0.05)
    result = sim.run(100.0)
    assert [p.pid for p in result.cancelled] == [3]
    assert len(result.completed) == 4
    assert all(p.pid != 3 for p in result.completed)
    assert len(cancelled) == 1 and cancelled[0][0].pid == 3
    assert cancelled[0][1] >= 0.05
    assert sim.live_processes() == 0


def test_cancel_miss_reports_none(machine):
    hits = []
    sim = Simulation(machine, on_cancel=lambda p, t: hits.append(p))
    proc = _proc(machine, pid=1)
    sim.add_process(proc, 0.0)
    sim.cancel_process(99, 1.0)  # never existed
    sim.cancel_process(1, 50.0)  # long completed by then
    result = sim.run(100.0)
    assert result.completed == [proc]
    assert result.cancelled == []
    assert hits == [None, None]


def test_cancelled_process_not_respawned(machine):
    """on_complete is not invoked for cancelled jobs."""
    completions = []
    sim = Simulation(
        machine, on_complete=lambda p, t: completions.append(p.pid) and None
    )
    for pid in (1, 2, 3, 4, 5):
        sim.add_process(_proc(machine, pid=pid, cycles=5e8), 0.0)
    sim.cancel_process(2, 0.01)
    sim.run(100.0)
    assert 2 not in completions
    assert len(completions) == 4


def test_scheduler_remove(machine):
    sched = LinuxO1Scheduler()
    sched.attach(machine, waker=lambda cid, now: None)
    a, b = _proc(machine, pid=1), _proc(machine, pid=2)
    sched.enqueue(a, 0.0)
    sched.enqueue(b, 0.0)
    got = sched.remove(1, 0.0)
    assert got is a
    assert sched.remove(1, 0.0) is None
    assert len(list(sched.queued_processes())) == 1


class _CollectCancels:
    """Picklable on_cancel callback (snapshots ship through pickle)."""

    def __init__(self):
        self.pids = []

    def __call__(self, proc, now):
        self.pids.append(None if proc is None else proc.pid)


def test_cancel_survives_snapshot_roundtrip(machine):
    collect = _CollectCancels()
    sim = Simulation(machine, on_cancel=collect)
    for pid in (1, 2, 3, 4, 5, 6):
        sim.add_process(_proc(machine, pid=pid, cycles=5e8), 0.0)
    sim.cancel_process(5, 0.08)
    sim.run(0.02)
    clone = Simulation.from_snapshot(
        pickle.loads(pickle.dumps(sim.snapshot_state()))
    )
    result = clone.run(100.0)
    assert [p.pid for p in result.cancelled] == [5]
    # The restored on_cancel is the unpickled copy of `collect`, so the
    # original saw nothing (the cancel fired after the snapshot point).
    assert collect.pids == []
    assert clone.on_cancel.pids == [5]


# -- engine -------------------------------------------------------------------


def test_open_run_ledger_and_determinism(machine):
    plan = OpenSystemPlan(
        seed=11, rate=0.5, horizon=60.0, classes=CLASSES,
        cancel_fraction=0.3, breakdowns=1,
    )
    run = OpenSystemRun(plan, machine)
    res = run.run()
    assert res.arrived == res.completed + res.cancelled + res.in_flight
    assert res.arrived > 0 and res.completed > 0
    assert len(res.sojourn) == res.completed
    assert len(res.wait) == res.completed
    d1 = json.dumps(res.to_dict(), sort_keys=True)
    d2 = json.dumps(OpenSystemRun(plan, machine).run().to_dict(), sort_keys=True)
    assert d1 == d2


def test_open_run_stepped_vs_coalesced_identical(machine):
    plan = OpenSystemPlan(
        seed=4, rate=0.6, horizon=40.0, classes=CLASSES,
        cancel_fraction=0.2, breakdowns=1,
    )
    coalesced = OpenSystemRun(plan, machine).run(coalesce=True)
    stepped = OpenSystemRun(plan, machine).run(coalesce=False)
    assert json.dumps(coalesced.to_dict(), sort_keys=True) == json.dumps(
        stepped.to_dict(), sort_keys=True
    )


def test_zero_arrival_open_run_bit_identical_to_closed(machine):
    workload = Workload.random(4, seed=11, queue_length=8)
    closed_result = WorkloadRun(workload, machine).run(60.0)
    open_result = OpenSystemRun(
        OpenSystemPlan(seed=11, rate=0.0, horizon=60.0),
        machine,
        closed_workload=workload,
    ).run()

    def image(result):
        return [
            (p.pid, p.name, p.completion, p.stats.cpu_time, p.stats.switches)
            for p in sorted(result.completed, key=lambda p: p.pid)
        ]

    assert image(closed_result) == image(open_result.sim_result)
    assert open_result.arrived == 0
    assert open_result.completed == 0


def test_open_jobs_ride_alongside_closed_workload(machine):
    workload = Workload.random(2, seed=3, queue_length=4)
    plan = OpenSystemPlan(
        seed=3, rate=0.4, horizon=50.0, classes=CLASSES
    )
    res = OpenSystemRun(plan, machine, closed_workload=workload).run()
    assert res.arrived > 0
    # Closed completions stay out of the open ledger...
    closed_done = [
        p for p in res.sim_result.completed if p.pid < OPEN_PID_BASE
    ]
    assert closed_done
    # ...and open completions out of theirs.
    assert res.completed == len(
        [p for p in res.sim_result.completed if p.pid > OPEN_PID_BASE]
    )


def test_opensys_telemetry_events(machine):
    from repro.telemetry import TimelineAnalyzer, TraceRecorder
    from repro.telemetry.context import set_recorder

    recorder = TraceRecorder(categories={"exec", "opensys"})
    previous = set_recorder(recorder)
    try:
        plan = OpenSystemPlan(
            seed=11, rate=0.5, horizon=60.0, classes=CLASSES,
            cancel_fraction=0.3, breakdowns=1,
        )
        res = OpenSystemRun(plan, machine).run()
    finally:
        set_recorder(previous)
    analyzer = TimelineAnalyzer.from_recorder(recorder)
    run_id = max(analyzer.timelines)
    timeline = analyzer.timeline(run_id)
    names = [name for _, name, _ in timeline.opensys_events]
    assert names.count("arrival") == res.arrived
    cancels = [
        args for _, name, args in timeline.opensys_events if name == "cancel"
    ]
    assert len(cancels) == res.cancelled + res.cancel_misses
    assert all(state_of(args["reason"]) == "cancelled" for args in cancels)
    assert "breakdown" in names and "repair" in names
    depth = analyzer.queue_depth(run_id)
    assert depth and max(value for _, value in depth) >= 1


# -- capacity and the load controller ----------------------------------------


def test_service_capacity(machine):
    # 2 fast + 2 slow at 1.6/2.4 -> 2 + 2*(2/3) effective cores.
    assert service_capacity(machine, 10.0) == pytest.approx(10.0 / 3 / 10.0)
    with pytest.raises(OpenSystemError):
        service_capacity(machine, 0.0)


def test_load_controller_sweep():
    base = OpenSystemPlan(seed=2, horizon=30.0, classes=CLASSES)

    def fake_runner(plan):
        from repro.metrics.latency import LatencySketch, QueueDepthSeries

        saturating = plan.rate >= 1.5
        depth = QueueDepthSeries()
        depth.record(0.0, 0)
        depth.record(20.0, 40 if saturating else 1)
        return OpenSystemResult(
            plan=plan, horizon=30.0, arrived=10, completed=10,
            cancelled=0, cancel_misses=0, sojourn=LatencySketch(),
            wait=LatencySketch(), depth=depth,
        )

    controller = LoadController(base, capacity=2.0, runner=fake_runner)
    assert controller.plan_at(0.5).rate == pytest.approx(1.0)
    sweep = controller.sweep((0.25, 0.5, 0.8, 0.9, 1.0), stop_past_saturation=1)
    assert sweep.saturation_fraction == 0.8
    assert len(sweep.points) == 3  # stopped after the first saturated point
    with pytest.raises(OpenSystemError):
        LoadController(base, capacity=0.0, runner=fake_runner)
    with pytest.raises(OpenSystemError):
        controller.plan_at(-0.1)
