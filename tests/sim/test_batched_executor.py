"""Golden-equality tests for the segment-batched executor.

``Simulation(batched=True)`` (the default) runs quanta through the flat
trace arrays and the batched quantum loop; ``batched=False`` forces the
stepped tree-walking reference path.  The two must agree *exactly* —
same completion times, same per-process stats, same throughput buckets,
same idle accounting — because the batched loop replays the reference
float arithmetic op for op.
"""

import pytest

from repro.instrument import BBStrategy, LoopStrategy, instrument
from repro.sim import SimProcess, Simulation, TraceGenerator
from repro.sim.cost_model import CostVector
from repro.sim.faults import DvfsEvent, FaultPlan, HotplugEvent
from repro.sim.flattrace import (
    FLATTEN_LIMIT,
    FlatCursor,
    flat_trace,
    make_cursor,
)
from repro.sim.process import Repeat, Segment, Trace, TraceCursor
from repro.tuning import PhaseTuningRuntime
from tests.conftest import make_phased_program


def _summary(result):
    """Everything a SimulationResult reports, as comparable plain data."""
    return {
        "time": result.time,
        "completed": [
            (
                p.pid,
                p.name,
                p.completion,
                p.stats.instructions,
                dict(p.stats.cycles_by_type),
                p.stats.switches,
                p.stats.migrations,
                p.stats.mark_firings,
                p.stats.mark_overhead_cycles,
                p.stats.cpu_time,
            )
            for p in result.completed
        ],
        "buckets": dict(result.throughput_buckets),
        "idle": dict(result.idle_time_by_core),
    }


def _run(machine, batched, strategy=None, delta=0.12, faults=None, procs=3):
    """One multi-process run; everything rebuilt fresh per call."""
    program, spec = make_phased_program(outer=6)
    generator = TraceGenerator(machine)
    if strategy is not None:
        source = instrument(program, strategy)
        runtime = PhaseTuningRuntime(machine, delta)
    else:
        source = program
        runtime = None
    sim = Simulation(machine, runtime=runtime, faults=faults, batched=batched)
    for pid in range(procs):
        proc = SimProcess(
            pid,
            f"p{pid}",
            generator.generate(source, spec),
            machine.all_cores_mask,
            isolated_time=1.0,
        )
        sim.add_process(proc, 0.0)
    return _summary(sim.run(1000.0))


def test_batched_matches_stepped_baseline(machine):
    """Runtime-less multiprogrammed run: identical down to the float."""
    assert _run(machine, True) == _run(machine, False)


def test_batched_matches_stepped_under_runtime(machine):
    assert _run(machine, True, strategy=LoopStrategy(20)) == _run(
        machine, False, strategy=LoopStrategy(20)
    )


def test_batched_matches_stepped_bb_strategy(machine):
    assert _run(machine, True, strategy=BBStrategy(15, 0), delta=0.08) == _run(
        machine, False, strategy=BBStrategy(15, 0), delta=0.08
    )


def test_batched_matches_stepped_with_faults(machine):
    """A nonzero fault plan (hotplug + DVFS + counter/IPC noise) hits the
    executor's fault hooks; both paths must still agree exactly."""
    # Place the machine events inside the run: probe its length first.
    span = _run(machine, False, strategy=LoopStrategy(20))["time"]
    plan = FaultPlan(
        seed=7,
        counter_fail_rate=0.05,
        counter_corrupt_rate=0.02,
        affinity_fail_rate=0.05,
        ipc_noise=0.01,
        hotplug=(
            HotplugEvent(time=span * 0.3, core_id=1, online=False),
            HotplugEvent(time=span * 0.7, core_id=1, online=True),
        ),
        dvfs=(DvfsEvent(time=span * 0.5, core_id=0, scale=0.8),),
    )
    faulted = _run(machine, True, strategy=LoopStrategy(20), faults=plan)
    assert faulted == _run(machine, False, strategy=LoopStrategy(20), faults=plan)
    # The plan really perturbed the run (otherwise this test is vacuous).
    assert faulted != _run(machine, True, strategy=LoopStrategy(20))


# -- flat trace / cursor parity -------------------------------------------------


def _zero_segment(machine, uid, iters):
    vector = CostVector.zero(machine.core_types())
    vector.instrs = 100.0
    for name in vector.compute:
        vector.compute[name] = 1e4
    return Segment(uid, None, iters, vector)


def _nested_trace(machine):
    a = _zero_segment(machine, "a", 2.0)
    b = _zero_segment(machine, "b", 3.0)
    c = _zero_segment(machine, "c", 1.0)
    return Trace((a, Repeat((b, Repeat((c,), 2)), 3), a))


def test_flat_cursor_walks_in_tree_order(machine):
    """FlatCursor and TraceCursor agree step by step under identical
    consume sequences, including partial consumes."""
    trace = _nested_trace(machine)
    flat = make_cursor(trace)
    tree = TraceCursor(trace)
    assert isinstance(flat, FlatCursor)
    while not tree.finished:
        assert not flat.finished
        assert flat.current is tree.current
        assert flat.remaining_iterations == tree.remaining_iterations
        assert flat.at_entry == tree.at_entry
        # Consume in two bites to exercise mid-step resumption.
        half = tree.remaining_iterations / 2.0
        flat.consume(half)
        tree.consume(half)
        assert flat.at_entry == tree.at_entry == False  # noqa: E712
        flat.consume(tree.remaining_iterations)
        tree.consume(tree.remaining_iterations)
    assert flat.finished


def test_flat_trace_is_cached_per_trace(machine):
    trace = _nested_trace(machine)
    assert flat_trace(trace) is flat_trace(trace)
    # 11 visits: a, 3 * (b, c, c), a.
    assert flat_trace(trace).n == 11


def test_oversized_trace_keeps_tree_walker(machine):
    seg = _zero_segment(machine, "s", 1.0)
    huge = Trace((Repeat((seg,), FLATTEN_LIMIT + 1),))
    assert flat_trace(huge) is None
    assert isinstance(make_cursor(huge), TraceCursor)
    # The verdict is cached too (the sentinel, not re-expansion).
    assert flat_trace(huge) is None


def test_hand_built_repeat_trace_runs_identically(machine):
    """A hand-built nested-repeat trace through both executor paths."""

    def run(batched):
        sim = Simulation(machine, batched=batched)
        proc = SimProcess(
            1, "nested", _nested_trace(machine),
            machine.all_cores_mask, isolated_time=1.0,
        )
        sim.add_process(proc, 0.0)
        return _summary(sim.run(100.0))

    assert run(True) == run(False)
