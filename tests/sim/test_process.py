"""Unit tests for traces, the cursor, and process bookkeeping."""

import pytest

from repro.errors import SimulationError
from repro.sim.cost_model import CostVector
from repro.sim.machine import core2quad_amp
from repro.sim.process import (
    Repeat,
    Segment,
    SimProcess,
    Trace,
    TraceCursor,
)


def _vector(cycles=10.0, instrs=5.0):
    v = CostVector.zero(core2quad_amp().core_types())
    v.instrs = instrs
    v.compute["fast"] = cycles
    v.compute["slow"] = cycles
    return v


def _segment(uid="s", iters=4.0, cycles=10.0, instrs=5.0):
    return Segment(uid, None, iters, _vector(cycles, instrs))


def test_trace_totals():
    trace = Trace((_segment(iters=3, cycles=10, instrs=5),))
    assert trace.total_instrs() == 15.0
    assert trace.total_cycles("fast") == 30.0


def test_repeat_totals_multiply():
    inner = _segment(iters=2, cycles=10, instrs=5)
    trace = Trace((Repeat((inner,), 4),))
    assert trace.total_instrs() == 40.0
    assert trace.total_cycles("fast") == 80.0


def test_cursor_walks_flat_trace():
    a, b = _segment("a"), _segment("b")
    cursor = TraceCursor(Trace((a, b)))
    assert cursor.current is a
    assert cursor.at_entry
    cursor.consume(4.0)
    assert cursor.current is b
    assert cursor.at_entry
    cursor.consume(4.0)
    assert cursor.finished


def test_cursor_partial_consumption():
    cursor = TraceCursor(Trace((_segment(iters=10),)))
    cursor.consume(3.0)
    assert cursor.remaining_iterations == pytest.approx(7.0)
    assert not cursor.at_entry
    cursor.consume(7.0)
    assert cursor.finished


def test_cursor_repeats_children():
    a, b = _segment("a", iters=1), _segment("b", iters=1)
    cursor = TraceCursor(Trace((Repeat((a, b), 3),)))
    visits = []
    while not cursor.finished:
        visits.append(cursor.current.uid)
        cursor.consume(cursor.remaining_iterations)
    assert visits == ["a", "b"] * 3


def test_cursor_nested_repeats():
    leaf = _segment("x", iters=1)
    trace = Trace((Repeat((Repeat((leaf,), 2),), 3),))
    cursor = TraceCursor(trace)
    count = 0
    while not cursor.finished:
        count += 1
        cursor.consume(1.0)
    assert count == 6


def test_cursor_skips_empty_nodes():
    empty_repeat = Repeat((), 5)
    zero_seg = _segment("z", iters=0)
    tail = _segment("t", iters=1)
    cursor = TraceCursor(Trace((empty_repeat, zero_seg, tail)))
    assert cursor.current is tail


def test_cursor_overconsumption_rejected():
    cursor = TraceCursor(Trace((_segment(iters=2),)))
    with pytest.raises(SimulationError):
        cursor.consume(3.0)


def test_cursor_consume_after_finish_rejected():
    cursor = TraceCursor(Trace((_segment(iters=1),)))
    cursor.consume(1.0)
    with pytest.raises(SimulationError):
        cursor.consume(1.0)


def test_entry_flag_cleared_by_mark_handling():
    cursor = TraceCursor(Trace((_segment(),)))
    assert cursor.at_entry
    cursor.mark_entry_handled()
    assert not cursor.at_entry
    assert cursor.current is not None


def test_process_flow_and_stretch():
    machine = core2quad_amp()
    proc = SimProcess(
        1, "x", Trace((_segment(),)), machine.all_cores_mask,
        arrival=2.0, isolated_time=4.0,
    )
    assert proc.flow_time is None
    assert proc.stretch is None
    proc.completion = 10.0
    assert proc.flow_time == 8.0
    assert proc.stretch == 2.0


def test_process_stats_record():
    machine = core2quad_amp()
    proc = SimProcess(1, "x", Trace((_segment(),)), machine.all_cores_mask)
    proc.stats.record("fast", instrs=100.0, cycles=200.0)
    proc.stats.record("fast", instrs=50.0, cycles=100.0)
    proc.stats.record("slow", instrs=10.0, cycles=30.0)
    assert proc.stats.instructions == 160.0
    assert proc.stats.cycles_by_type == {"fast": 300.0, "slow": 30.0}
    assert proc.stats.instrs_by_type["slow"] == 10.0
